"""Prometheus text exposition for the serving plane (``GET /metrics``).

Renders the server's stats snapshot (the ``/stats`` payload with histogram
buckets included) into the Prometheus text format, version 0.0.4: ``# HELP``
/ ``# TYPE`` comments followed by ``name{labels} value`` samples, histograms
as cumulative ``_bucket`` series with the ``le`` label plus ``_sum`` and
``_count``.  No client library is used — the format is a line protocol and
the repo's no-new-dependencies rule applies.

The inverse direction lives here too: :func:`parse_exposition` is a small,
strict parser used by tests and ``tools/bench_serve.py`` to *validate* a
scrape — malformed lines, histogram buckets that are not cumulative, or a
``+Inf`` bucket disagreeing with ``_count`` all raise :class:`ValueError`.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "parse_exposition",
    "render_metrics",
    "validate_exposition",
]

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

#: Metric names every healthy scrape must expose (bench/CI schema check).
REQUIRED_METRICS = (
    "repro_requests_total",
    "repro_request_latency_seconds",
    "repro_request_sheds_total",
    "repro_queue_depth",
    "repro_inflight_flops",
    "repro_batches_total",
    "repro_plan_cache_lowers_total",
)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict | None, value) -> None:
        if labels:
            inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in labels.items())
            self.lines.append(f"{name}{{{inner}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _route_histograms(w: _Writer, routes: dict) -> None:
    w.header(
        "repro_request_latency_seconds",
        "histogram",
        "End-to-end request latency per route (server side).",
    )
    for route, stats in routes.items():
        for bound, count in stats.get("buckets", []):
            w.sample(
                "repro_request_latency_seconds_bucket",
                {"route": route, "le": _fmt(float(bound))},
                count,
            )
        latency = stats["latency_ms"]
        mean_ms = latency.get("mean") or 0.0
        w.sample(
            "repro_request_latency_seconds_sum",
            {"route": route},
            mean_ms / 1e3 * latency["count"],
        )
        w.sample(
            "repro_request_latency_seconds_count", {"route": route}, latency["count"]
        )


def render_metrics(stats: dict) -> str:
    """Render a ``/stats`` payload (with buckets) as Prometheus text."""
    serving = stats.get("serving", {})
    routes = serving.get("routes", {})
    tenants = serving.get("tenants", {})
    batching = stats.get("batching", {})
    runtime = stats.get("runtime", {})
    plan_cache = runtime.get("plan_cache", {})

    w = _Writer()
    w.header("repro_requests_total", "counter", "Requests handled, by route.")
    for route, s in routes.items():
        w.sample("repro_requests_total", {"route": route}, s["requests"])
    w.header("repro_request_errors_total", "counter", "Non-2xx responses, by route.")
    for route, s in routes.items():
        w.sample("repro_request_errors_total", {"route": route}, s["errors"])
    w.header(
        "repro_request_sheds_total", "counter", "Admission rejections (503), by route."
    )
    for route, s in routes.items():
        w.sample("repro_request_sheds_total", {"route": route}, s["sheds"])
    _route_histograms(w, routes)

    w.header("repro_tenant_requests_total", "counter", "Requests handled, by tenant.")
    for tenant, s in tenants.items():
        w.sample("repro_tenant_requests_total", {"tenant": tenant}, s["requests"])

    w.header(
        "repro_queue_depth", "gauge", "Admitted requests waiting behind max-inflight."
    )
    w.sample("repro_queue_depth", None, serving.get("queue_depth", 0))
    w.header(
        "repro_inflight_flops",
        "gauge",
        "Estimated flops of admitted, unfinished work (cost-aware admission).",
    )
    w.sample("repro_inflight_flops", None, serving.get("inflight_flops", 0))
    w.header(
        "repro_admission_shed_total",
        "counter",
        "Admission rejections by reason (queue depth vs flop budget).",
    )
    w.sample(
        "repro_admission_shed_total", {"reason": "queue"}, batching.get("shed_queue", 0)
    )
    w.sample(
        "repro_admission_shed_total", {"reason": "cost"}, batching.get("shed_cost", 0)
    )
    w.header(
        "repro_admission_estimate_fallbacks_total",
        "counter",
        "Requests admitted at full budget because the flop estimate failed.",
    )
    w.sample(
        "repro_admission_estimate_fallbacks_total",
        None,
        serving.get("estimate_fallbacks", 0),
    )
    w.header(
        "repro_admission_retry_after_seconds",
        "gauge",
        "Retry-After of the most recent shed response.",
    )
    w.sample(
        "repro_admission_retry_after_seconds", None, batching.get("retry_after_last", 0)
    )
    w.header(
        "repro_admission_drained_flops_total",
        "counter",
        "Estimated flops of completed work (drain rate numerator).",
    )
    w.sample(
        "repro_admission_drained_flops_total", None, batching.get("drained_flops", 0)
    )

    w.header("repro_batches_total", "counter", "Micro-batches dispatched.")
    w.sample("repro_batches_total", None, batching.get("batches", 0))
    w.header(
        "repro_batched_requests_total", "counter", "Requests carried by micro-batches."
    )
    w.sample("repro_batched_requests_total", None, batching.get("batched_requests", 0))
    w.header(
        "repro_batch_coalescence_factor",
        "gauge",
        "Mean requests per dispatched micro-batch.",
    )
    w.sample(
        "repro_batch_coalescence_factor",
        None,
        serving.get("coalescence_factor") or 0.0,
    )
    w.header("repro_request_timeouts_total", "counter", "Requests that hit 504.")
    w.sample("repro_request_timeouts_total", None, batching.get("timeouts", 0))
    w.header("repro_traces_written_total", "counter", "Sampled request traces exported.")
    w.sample("repro_traces_written_total", None, serving.get("traces_written", 0))

    w.header("repro_sessions", "gauge", "Warm sessions currently pooled.")
    w.sample("repro_sessions", None, runtime.get("sessions", 0))
    w.header("repro_sessions_evicted_total", "counter", "Warm sessions LRU-evicted.")
    w.sample("repro_sessions_evicted_total", None, runtime.get("sessions_evicted", 0))
    for key in ("lookups", "hits", "lowers", "symbolic_expansions", "numeric_replays"):
        name = f"repro_plan_cache_{key}_total"
        w.header(name, "counter", f"Plan cache {key.replace('_', ' ')}.")
        w.sample(name, None, plan_cache.get(key, 0))
    w.header(
        "repro_requests_per_lowering",
        "gauge",
        "Requests served per symbolic lowering paid (amortisation factor).",
    )
    w.sample(
        "repro_requests_per_lowering", None, stats.get("requests_per_lowering") or 0.0
    )

    exec_stats = runtime.get("exec") or {}
    w.header(
        "repro_exec_calls_total",
        "counter",
        "Numeric primitive calls through the shared exec plane, by dispatch.",
    )
    for key, label in (
        ("parallel_calls", "parallel"),
        ("serial_calls", "serial"),
        ("fallbacks", "fallback"),
    ):
        w.sample("repro_exec_calls_total", {"dispatch": label}, exec_stats.get(key, 0))
    w.header(
        "repro_exec_partitions_total", "counter", "Partitions run by the exec plane."
    )
    w.sample("repro_exec_partitions_total", None, exec_stats.get("partitions", 0))
    return w.text()


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse Prometheus text into ``{name: [(labels, value), ...]}``.

    Strict about what the renderer emits (and what a scraper needs): every
    sample line must match the line protocol, every label pair must be
    quoted, and every sample's family (name stripped of ``_bucket`` /
    ``_sum`` / ``_count``) must have been declared by a ``# TYPE`` line.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed TYPE comment: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample line: {line!r}")
        name = match.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and family not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE declaration")
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in raw.split(","):
                label = _LABEL.match(pair.strip())
                if label is None:
                    raise ValueError(f"line {lineno}: malformed label {pair!r}")
                labels[label.group("key")] = label.group("value")
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "NaN":
            value = math.nan
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value {raw_value!r}"
                ) from None
        samples.setdefault(name, []).append((labels, value))
    return samples


def validate_exposition(
    text: str, required: tuple[str, ...] = REQUIRED_METRICS
) -> dict[str, list[tuple[dict, float]]]:
    """Parse + schema-check one scrape; returns the samples on success.

    Beyond :func:`parse_exposition`'s line-level checks, asserts that every
    ``required`` family is present and that each latency histogram series is
    cumulative with its ``+Inf`` bucket equal to ``_count``.
    """
    samples = parse_exposition(text)
    families = {re.sub(r"_(bucket|sum|count)$", "", name) for name in samples}
    missing = [name for name in required if name not in families]
    if missing:
        raise ValueError(f"scrape is missing required metrics: {missing}")

    buckets = samples.get("repro_request_latency_seconds_bucket", [])
    by_route: dict[str, list[tuple[float, float]]] = {}
    for labels, value in buckets:
        le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
        by_route.setdefault(labels.get("route", ""), []).append((le, value))
    counts = {
        labels.get("route", ""): value
        for labels, value in samples.get("repro_request_latency_seconds_count", [])
    }
    for route, series in by_route.items():
        series.sort(key=lambda pair: pair[0])
        cumulative = [value for _, value in series]
        if cumulative != sorted(cumulative):
            raise ValueError(f"histogram for {route!r} is not cumulative")
        if not math.isinf(series[-1][0]):
            raise ValueError(f"histogram for {route!r} lacks a +Inf bucket")
        if route in counts and series[-1][1] != counts[route]:
            raise ValueError(
                f"histogram for {route!r}: +Inf bucket {series[-1][1]} != "
                f"count {counts[route]}"
            )
    return samples
