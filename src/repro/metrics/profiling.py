"""nvprof-style profiling report assembled from simulator output.

Collects, per kernel stage, the counters the paper plots: execution time,
per-SM cycle spread (Figure 3a), sync-stall percentage (Figure 13), and L2
read/write throughput (Figures 12 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.stats import KernelStats
from repro.metrics.lbi import load_balancing_index

__all__ = ["StageProfile", "ProfileReport", "profile_report"]


@dataclass(frozen=True)
class StageProfile:
    """Aggregated counters for one stage (expansion or merge)."""

    stage: str
    seconds: float
    lbi: float
    sm_utilization: float
    sync_stall_pct: float
    l2_read_gbs: float
    l2_write_gbs: float
    n_blocks: int


@dataclass(frozen=True)
class ProfileReport:
    """Full profile of one simulated spGEMM execution."""

    algorithm: str
    gpu: str
    total_seconds: float
    gflops: float
    stages: tuple[StageProfile, ...]

    def stage(self, name: str) -> StageProfile:
        """Look up one stage's profile by name."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)


def profile_report(stats: KernelStats) -> ProfileReport:
    """Build a :class:`ProfileReport` from simulated kernel stats."""
    stages = []
    for stage_name in ("expansion", "merge"):
        phases = [p for p in stats.phases if p.stage == stage_name]
        if not phases:
            continue
        busy = stats.sm_busy_cycles(stage_name)
        seconds = stats.stage_seconds(stage_name)
        stall_num = sum(p.sync_stall_cycles for p in phases)
        stall_den = sum(p.busy_cycles for p in phases)
        stages.append(
            StageProfile(
                stage=stage_name,
                seconds=seconds,
                lbi=load_balancing_index(busy),
                sm_utilization=stats.sm_utilization(stage_name),
                sync_stall_pct=100.0 * stall_num / stall_den if stall_den else 0.0,
                l2_read_gbs=stats.l2_read_gbs(stage_name),
                l2_write_gbs=stats.l2_write_gbs(stage_name),
                n_blocks=sum(p.n_blocks for p in phases),
            )
        )
    return ProfileReport(
        algorithm=stats.algorithm,
        gpu=stats.config.name,
        total_seconds=stats.total_seconds,
        gflops=stats.gflops,
        stages=tuple(stages),
    )
