"""Numeric-plane profiling: aggregate an instrumented plan execution.

The performance plane's counters come from the simulator; this module covers
the *other* plane.  :meth:`~repro.spgemm.base.SpGEMMAlgorithm.profile_plan`
executes a lowered :class:`~repro.plan.ir.ExecutionPlan` numerically and
records one :class:`~repro.plan.ir.PhaseExecution` per phase (op counts,
wall time, descriptor-accounted bytes); :func:`plan_profile` folds those into
per-stage totals so the two planes can be compared phase for phase.

The plan cache's amortisation counters (:class:`PlanCacheStats`, re-exported
from :mod:`repro.plan.cache`) also surface here: :func:`format_cache_stats`
renders them for ``repro run --iterations`` and the iterative bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.plan.cache import PlanCacheStats
from repro.plan.ir import PhaseExecution

__all__ = [
    "PlanStageProfile",
    "PlanProfile",
    "plan_profile",
    "PlanCacheStats",
    "format_cache_stats",
]


def format_cache_stats(stats: PlanCacheStats) -> str:
    """One-line human-readable rendering of plan-cache counters."""
    line = (
        f"plan cache: {stats.lookups} lookups, {stats.hits} hits "
        f"({stats.hit_rate:.0%}), {stats.lowers} lowerings, "
        f"{stats.symbolic_expansions} symbolic expansions, "
        f"{stats.numeric_replays} numeric replays"
    )
    if stats.evictions:
        line += f", {stats.evictions} evictions ({stats.evicted_bytes} B)"
    return line


@dataclass(frozen=True)
class PlanStageProfile:
    """Aggregated numeric-execution counters for one stage."""

    stage: str
    n_phases: int
    n_blocks: int
    ops: int
    seconds: float
    bytes_touched: float


@dataclass(frozen=True)
class PlanProfile:
    """Per-stage rollup of one instrumented plan execution."""

    algorithm: str
    total_ops: int
    total_seconds: float
    stages: tuple[PlanStageProfile, ...]

    def stage(self, name: str) -> PlanStageProfile:
        """Look up one stage's rollup by name."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)


def plan_profile(algorithm: str, records: Sequence[PhaseExecution]) -> PlanProfile:
    """Fold per-phase execution records into a :class:`PlanProfile`."""
    stages = []
    for stage_name in ("expansion", "merge", "setup"):
        phases = [r for r in records if r.stage == stage_name]
        if not phases:
            continue
        stages.append(
            PlanStageProfile(
                stage=stage_name,
                n_phases=len(phases),
                n_blocks=sum(r.n_blocks for r in phases),
                ops=sum(r.ops for r in phases),
                seconds=sum(r.seconds for r in phases),
                bytes_touched=sum(r.bytes_touched for r in phases),
            )
        )
    return PlanProfile(
        algorithm=algorithm,
        total_ops=sum(r.ops for r in records if r.stage == "expansion"),
        total_seconds=sum(r.seconds for r in records),
        stages=tuple(stages),
    )
