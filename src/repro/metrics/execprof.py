"""Execution-plane profiling: render repro.exec engine counters.

The multicore execution plane (:mod:`repro.exec`) counts how its primitives
actually ran — partitioned across the pool, serially below the size
threshold, or re-run serially after a pool failure — plus partition/item
totals, shared-memory publish reuse, and a per-op breakdown recording which
cut discipline and kernel backend each primitive used.
:func:`format_exec_stats` renders an :class:`~repro.exec.ExecStats` snapshot
for ``repro run --exec-workers`` and the exec bench
(``tools/bench_exec.py``), mirroring
:func:`~repro.metrics.planprof.format_cache_stats` for the plan cache.
"""

from __future__ import annotations

from repro.exec import ExecStats

__all__ = ["ExecStats", "format_exec_stats"]


def format_exec_stats(stats: ExecStats) -> str:
    """Human-readable rendering of execution-engine counters.

    One summary line, then one line per partitioned op naming the
    partitioner and backend it ran with — the self-description traces and
    BENCH artifacts need to attribute a number to a configuration.
    """
    lines = [
        f"exec engine: {stats.parallel_calls} parallel calls "
        f"({stats.partitions} partitions, {stats.items} items), "
        f"{stats.serial_calls} below threshold, {stats.fallbacks} fallbacks, "
        f"{stats.estimate_overflows} estimate overflows, "
        f"shm publishes {stats.publish_hits} reused / {stats.publish_misses} copied"
    ]
    for op, entry in sorted(stats.per_op.items()):
        lines.append(
            f"  {op}: {entry['calls']} calls, {entry['partitions']} partitions, "
            f"{entry['items']} items "
            f"[partitioner={entry['partitioner']}, backend={entry['backend']}]"
        )
    return "\n".join(lines)
