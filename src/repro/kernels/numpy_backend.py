"""The NumPy reference implementations of the four numeric primitives.

These are the always-available ground truth every other backend is verified
against at selection time (:func:`repro.kernels.verify_backend`).  The bodies
are the vectorised kernels the numeric plane has always run — extracted here
behind array-level signatures so that :mod:`repro.spgemm.expansion`,
:mod:`repro.spgemm.merge` and :mod:`repro.plan.cache` dispatch through the
active backend instead of hard-coding one implementation.

Contract shared by every backend (the bit-identity invariant):

* expansions emit triplets in the canonical orders (pair order for the outer
  product, row order for Gustavson) with provenance indices that are plain
  integer arithmetic over the operands' index structure;
* the symbolic merge derives the *stable* sort permutation of the flat
  coordinate keys — stable sorts have a unique permutation, so any stable
  algorithm produces identical arrays;
* the two reductions accumulate float64 values in ascending stream order
  (the order :func:`numpy.ufunc.at` applies repeated indices), so the sums
  are bit-for-bit reproducible across backends.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expand_outer_indices",
    "expand_row_indices",
    "merge_symbolic",
    "segmented_sum",
    "gather_multiply_sum",
    "kway_merge",
]


def _segment_offsets(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """For segments of the given sizes, return (segment id, offset within
    segment) for every element of the concatenation."""
    total = int(counts.sum())
    seg_of = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return seg_of, offsets


def expand_outer_indices(
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    b_indptr: np.ndarray,
    b_indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Symbolic outer-product expansion over CSC(A) and CSR(B) structure.

    Returns ``(rows, cols, a_idx, b_idx)`` in pair order, then by (position
    in the A column, position in the B row) — the order an outer-product
    kernel would emit.  ``a_idx``/``b_idx`` are stored-entry positions.
    """
    na = np.diff(a_indptr)
    nb = np.diff(b_indptr)
    counts = na * nb
    pair_of, offsets = _segment_offsets(counts)

    nb_per = nb[pair_of]
    a_pos = offsets // np.maximum(nb_per, 1)
    b_pos = offsets % np.maximum(nb_per, 1)

    a_idx = a_indptr[pair_of] + a_pos
    b_idx = b_indptr[pair_of] + b_pos
    return a_indices[a_idx], b_indices[b_idx], a_idx, b_idx


def expand_row_indices(
    a_indptr: np.ndarray,
    a_indices: np.ndarray,
    b_indptr: np.ndarray,
    b_indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Symbolic row-product (Gustavson) expansion over CSR(A), CSR(B).

    Returns ``(rows, cols, a_idx, b_idx)`` in output-row order, then by the
    A entry within the row, then by the B entry within the gathered row.
    """
    n_rows = len(a_indptr) - 1
    a_row_nnz = np.diff(a_indptr)
    b_row_nnz = np.diff(b_indptr)
    per_entry = b_row_nnz[a_indices]
    entry_of, offsets = _segment_offsets(per_entry)

    row_of_entry = np.repeat(np.arange(n_rows, dtype=np.int64), a_row_nnz)
    rows = row_of_entry[entry_of]
    b_rows = a_indices[entry_of]
    b_idx = b_indptr[b_rows] + offsets
    return rows, b_indices[b_idx], entry_of, b_idx


def merge_symbolic(
    rows: np.ndarray, cols: np.ndarray, n_rows: int, n_cols: int
) -> tuple[np.ndarray, np.ndarray, int, np.ndarray, np.ndarray]:
    """The symbolic half of the coalescing merge (non-empty streams only).

    Returns ``(order, group, n_groups, indptr, indices)``: the stable sort
    permutation over the triplet stream, the output-entry id of each sorted
    triplet, the unique-coordinate count, and the output CSR structure.
    """
    keys = rows.astype(np.int64) * np.int64(n_cols) + cols
    order = np.argsort(keys, kind="stable")
    keys = keys[order]

    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = keys[1:] != keys[:-1]
    group = np.cumsum(boundaries) - 1

    unique_keys = keys[boundaries]
    out_rows = unique_keys // n_cols
    out_cols = unique_keys % n_cols
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(out_rows, minlength=n_rows), out=indptr[1:])
    return order, group, int(group[-1]) + 1, indptr, out_cols


def segmented_sum(
    vals: np.ndarray, order: np.ndarray, group: np.ndarray, n_groups: int
) -> np.ndarray:
    """Sum ``vals[order]`` by ``group`` in ascending stream order."""
    out = np.zeros(n_groups, dtype=np.float64)
    np.add.at(out, group, vals[order])
    return out


def gather_multiply_sum(
    a_data: np.ndarray,
    b_data: np.ndarray,
    a_gather: np.ndarray,
    b_gather: np.ndarray,
    group: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """Gather both operands, multiply, and sum by ``group`` in stream order."""
    out = np.zeros(n_groups, dtype=np.float64)
    np.add.at(out, group, a_data[a_gather] * b_data[b_gather])
    return out


def kway_merge(
    keys: np.ndarray, vals: np.ndarray, starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge k ascending key streams, summing duplicates in stream order.

    The streams are concatenated: stream ``s`` occupies
    ``keys[starts[s]:starts[s + 1]]`` (and the matching ``vals`` slice) and
    must be ascending within itself.  Returns ``(unique_keys, summed_vals)``
    with duplicates accumulated in (key, stream index, position-in-stream)
    order — the order a pointer-walking k-way merge consumes them, and the
    order a stable sort of the concatenation produces, so every backend's
    float64 sums are bit-for-bit identical.
    """
    if len(keys) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.empty(len(sorted_keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group = np.cumsum(boundaries) - 1
    out = np.zeros(int(group[-1]) + 1, dtype=np.float64)
    np.add.at(out, group, vals[order])
    return sorted_keys[boundaries], out
