"""The optional numba-compiled backend for the numeric primitives.

Everything numba lives behind :func:`load`, so importing this module never
requires numba: callers go through :func:`repro.kernels.get_backend`, which
raises :class:`~repro.errors.KernelBackendError` with a clear message when
the wheels are missing, and CI's numba leg skips gracefully.

Bit-identity argument, per primitive:

* the expansions perform the same integer index arithmetic as the NumPy
  reference, just as explicit loops — integer results are exact;
* the symbolic merge uses a *stable* mergesort ``argsort``; the stable sort
  permutation of a key array is unique, so ``order`` (and everything derived
  from it) is identical to NumPy's stable ``argsort``;
* the reductions accumulate float64 products in ascending stream order —
  the order :func:`numpy.ufunc.at` applies repeated indices — so every
  output entry is the same sequence of float64 additions, bit for bit;
* the k-way merge consumes equal keys in (stream index, position) order —
  exactly the order a stable sort of the concatenated streams produces — and
  accumulates each output value from 0.0 upward, matching
  :func:`numpy.ufunc.at`'s left fold addition for addition.

The selection-time verification (:func:`repro.kernels.verify_backend`)
asserts all of this against the NumPy reference before the backend is ever
installed; a mismatch refuses the backend rather than risking wrong results.
"""

from __future__ import annotations

import numpy as np

__all__ = ["load"]

#: Filled by :func:`load` on first success so repeat selections skip the
#: (expensive) jit wrapper construction.
_CACHE: dict | None = None


def load() -> dict:  # pragma: no cover - requires numba wheels
    """Import numba and return the backend's primitive table.

    Raises ``ImportError`` when numba is not installed; the registry wraps
    that into :class:`~repro.errors.KernelBackendError`.  Compilation is
    deferred to first call per primitive (njit lazy dispatch); ``cache=True``
    persists the machine code next to this module across processes.
    """
    global _CACHE
    if _CACHE is not None:
        return _CACHE

    from numba import njit

    @njit(cache=True)
    def _fill_outer(a_indptr, a_indices, b_indptr, b_indices,
                    rows, cols, a_idx, b_idx):
        pos = 0
        for k in range(len(a_indptr) - 1):
            for i in range(a_indptr[k], a_indptr[k + 1]):
                r = a_indices[i]
                for j in range(b_indptr[k], b_indptr[k + 1]):
                    rows[pos] = r
                    cols[pos] = b_indices[j]
                    a_idx[pos] = i
                    b_idx[pos] = j
                    pos += 1

    def expand_outer_indices(a_indptr, a_indices, b_indptr, b_indices):
        total = int((np.diff(a_indptr) * np.diff(b_indptr)).sum())
        rows = np.empty(total, dtype=np.int64)
        cols = np.empty(total, dtype=np.int64)
        a_idx = np.empty(total, dtype=np.int64)
        b_idx = np.empty(total, dtype=np.int64)
        _fill_outer(a_indptr, a_indices, b_indptr, b_indices,
                    rows, cols, a_idx, b_idx)
        return rows, cols, a_idx, b_idx

    @njit(cache=True)
    def _fill_row(a_indptr, a_indices, b_indptr, b_indices,
                  rows, cols, a_idx, b_idx):
        pos = 0
        for r in range(len(a_indptr) - 1):
            for i in range(a_indptr[r], a_indptr[r + 1]):
                c = a_indices[i]
                for j in range(b_indptr[c], b_indptr[c + 1]):
                    rows[pos] = r
                    cols[pos] = b_indices[j]
                    a_idx[pos] = i
                    b_idx[pos] = j
                    pos += 1

    def expand_row_indices(a_indptr, a_indices, b_indptr, b_indices):
        total = int(np.diff(b_indptr)[a_indices].sum())
        rows = np.empty(total, dtype=np.int64)
        cols = np.empty(total, dtype=np.int64)
        a_idx = np.empty(total, dtype=np.int64)
        b_idx = np.empty(total, dtype=np.int64)
        _fill_row(a_indptr, a_indices, b_indptr, b_indices,
                  rows, cols, a_idx, b_idx)
        return rows, cols, a_idx, b_idx

    @njit(cache=True)
    def _merge_structure(sorted_keys, n_rows, n_cols, group, row_counts):
        n_groups = 0
        prev = np.int64(-1)
        for i in range(len(sorted_keys)):
            key = sorted_keys[i]
            if key != prev:
                n_groups += 1
                row_counts[key // n_cols] += 1
                prev = key
            group[i] = n_groups - 1
        return n_groups

    def merge_symbolic(rows, cols, n_rows, n_cols):
        keys = rows.astype(np.int64) * np.int64(n_cols) + cols
        # Stable mergesort: the permutation is unique across stable sorts,
        # so this matches NumPy's kind="stable" argsort exactly.
        order = np.argsort(keys, kind="mergesort")
        sorted_keys = keys[order]
        group = np.empty(len(sorted_keys), dtype=np.int64)
        row_counts = np.zeros(n_rows, dtype=np.int64)
        n_groups = _merge_structure(sorted_keys, n_rows, n_cols, group, row_counts)
        boundaries = np.empty(len(sorted_keys), dtype=bool)
        boundaries[0] = True
        boundaries[1:] = sorted_keys[1:] != sorted_keys[:-1]
        indices = sorted_keys[boundaries] % n_cols
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        return order, group, int(n_groups), indptr, indices

    @njit(cache=True)
    def _segmented_sum(vals, order, group, n_groups):
        out = np.zeros(n_groups, dtype=np.float64)
        for i in range(len(order)):
            out[group[i]] += vals[order[i]]
        return out

    def segmented_sum(vals, order, group, n_groups):
        return _segmented_sum(
            np.ascontiguousarray(vals, dtype=np.float64), order, group, int(n_groups)
        )

    @njit(cache=True)
    def _gather_multiply_sum(a_data, b_data, a_gather, b_gather, group, n_groups):
        out = np.zeros(n_groups, dtype=np.float64)
        for i in range(len(group)):
            out[group[i]] += a_data[a_gather[i]] * b_data[b_gather[i]]
        return out

    def gather_multiply_sum(a_data, b_data, a_gather, b_gather, group, n_groups):
        return _gather_multiply_sum(
            np.ascontiguousarray(a_data, dtype=np.float64),
            np.ascontiguousarray(b_data, dtype=np.float64),
            a_gather, b_gather, group, int(n_groups),
        )

    @njit(cache=True)
    def _kway_merge(keys, vals, starts, out_keys, out_vals):
        k = len(starts) - 1
        pos = starts[:-1].copy()
        n_out = 0
        while True:
            best = -1
            best_key = np.int64(0)
            for s in range(k):
                if pos[s] < starts[s + 1]:
                    key = keys[pos[s]]
                    if best < 0 or key < best_key:
                        best = s
                        best_key = key
            if best < 0:
                break
            v = vals[pos[best]]
            pos[best] += 1
            if n_out > 0 and out_keys[n_out - 1] == best_key:
                out_vals[n_out - 1] += v
            else:
                out_keys[n_out] = best_key
                out_vals[n_out] = 0.0
                out_vals[n_out] += v
                n_out += 1
        return n_out

    def kway_merge(keys, vals, starts):
        if len(keys) == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        out_keys = np.empty(len(keys), dtype=np.int64)
        out_vals = np.empty(len(keys), dtype=np.float64)
        n_out = _kway_merge(
            np.ascontiguousarray(keys, dtype=np.int64),
            np.ascontiguousarray(vals, dtype=np.float64),
            np.ascontiguousarray(starts, dtype=np.int64),
            out_keys, out_vals,
        )
        return out_keys[:n_out].copy(), out_vals[:n_out].copy()

    _CACHE = {
        "expand_outer_indices": expand_outer_indices,
        "expand_row_indices": expand_row_indices,
        "merge_symbolic": merge_symbolic,
        "segmented_sum": segmented_sum,
        "gather_multiply_sum": gather_multiply_sum,
        "kway_merge": kway_merge,
    }
    return _CACHE
