"""repro.kernels — pluggable backends for the numeric primitives.

Every numeric path in the library reduces to six primitives: the two
symbolic expansions (outer-product and Gustavson row-product), the coalescing
merge's symbolic half, the two segmented reductions (the merge's
segmented sum and recipe replay's gather-multiply-sum), and the k-way merge
of sorted partial-product streams the out-of-core combiner
(:mod:`repro.oocore`) runs its merge tree on.  This package owns
their implementations as swappable *backends*:

* ``numpy`` — the always-available vectorised reference
  (:mod:`repro.kernels.numpy_backend`); the ground truth.
* ``numba`` — optional compiled loops (:mod:`repro.kernels.numba_backend`);
  selected only when the wheels are installed **and** the backend passes a
  bit-identity verification against the reference at selection time.

Selection is ambient, like :mod:`repro.obs` and :mod:`repro.exec`: the
serial kernel bodies in :mod:`repro.spgemm.expansion`,
:mod:`repro.spgemm.merge` and :mod:`repro.plan.cache` call :func:`active`
and dispatch through whichever backend is installed.  Drivers choose via the
``REPRO_KERNEL_BACKEND`` environment variable (read lazily, once), the
``--kernel-backend`` CLI flag, or programmatically::

    from repro import kernels

    kernels.select("numba")          # verified, process-wide
    with kernels.use("numba"):       # verified, scoped
        c = algo.multiply(ctx)

Because verification requires exact equality of every primitive's output on
a non-trivial problem — integer structure *and* float64 sums — a selected
backend cannot change any numeric result, only wall-clock.  A backend that
is unavailable or fails verification raises
:class:`~repro.errors.KernelBackendError` and is never installed.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import KernelBackendError
from repro.kernels import numpy_backend

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackend",
    "active",
    "active_name",
    "available",
    "get_backend",
    "select",
    "use",
    "verify_backend",
]

ENV_VAR = "REPRO_KERNEL_BACKEND"
DEFAULT_BACKEND = "numpy"
BACKEND_NAMES = ("numpy", "numba")


@dataclass(frozen=True)
class KernelBackend:
    """One implementation of the numeric primitives.

    All functions take and return plain NumPy arrays; signatures are
    documented on the reference implementations in
    :mod:`repro.kernels.numpy_backend`.  ``verified`` records whether this
    backend passed the selection-time bit-identity check (the reference
    itself is trivially verified).
    """

    name: str
    expand_outer_indices: Callable
    expand_row_indices: Callable
    merge_symbolic: Callable
    segmented_sum: Callable
    gather_multiply_sum: Callable
    kway_merge: Callable
    verified: bool = False


NUMPY_BACKEND = KernelBackend(
    name="numpy",
    expand_outer_indices=numpy_backend.expand_outer_indices,
    expand_row_indices=numpy_backend.expand_row_indices,
    merge_symbolic=numpy_backend.merge_symbolic,
    segmented_sum=numpy_backend.segmented_sum,
    gather_multiply_sum=numpy_backend.gather_multiply_sum,
    kway_merge=numpy_backend.kway_merge,
    verified=True,
)

_BACKENDS: dict[str, KernelBackend] = {"numpy": NUMPY_BACKEND}
_ACTIVE: KernelBackend | None = None


def available(name: str) -> bool:
    """Can ``name`` be selected on this host (dependencies installed)?"""
    if name == "numpy":
        return True
    if name == "numba":
        return importlib.util.find_spec("numba") is not None
    return False


def get_backend(name: str, *, verify: bool = True) -> KernelBackend:
    """Build (or reuse) the named backend, verifying bit-identity once.

    Raises :class:`~repro.errors.KernelBackendError` for unknown names,
    missing optional dependencies, or a verification mismatch.
    """
    if name in _BACKENDS:
        return _BACKENDS[name]
    if name not in BACKEND_NAMES:
        raise KernelBackendError(
            f"unknown kernel backend {name!r}; known: {list(BACKEND_NAMES)}"
        )
    if name == "numba":
        try:
            from repro.kernels import numba_backend

            table = numba_backend.load()
        except ImportError as exc:
            raise KernelBackendError(
                "kernel backend 'numba' is unavailable: numba is not "
                f"installed ({exc}); the 'numpy' reference backend is always "
                "available"
            ) from None
        backend = KernelBackend(name="numba", verified=False, **table)
    else:  # pragma: no cover - unreachable while BACKEND_NAMES is fixed
        raise KernelBackendError(f"backend {name!r} has no loader")
    if verify:
        verify_backend(backend)
        backend = KernelBackend(
            **{**backend.__dict__, "verified": True}  # type: ignore[arg-type]
        )
    _BACKENDS[name] = backend
    return backend


def active() -> KernelBackend:
    """The installed backend (resolving ``REPRO_KERNEL_BACKEND`` lazily)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend(os.environ.get(ENV_VAR) or DEFAULT_BACKEND)
    return _ACTIVE


def active_name() -> str:
    """Name of the installed backend."""
    return active().name


def select(name: str) -> KernelBackend:
    """Install the named backend process-wide (verified); returns it."""
    global _ACTIVE
    _ACTIVE = get_backend(name)
    return _ACTIVE


@contextmanager
def use(name: str | None):
    """Scoped backend selection; ``None`` is a no-op scope.

    The previous backend (or the lazy-unresolved state) is restored on exit,
    so tests and CLI invocations cannot leak a selection.
    """
    global _ACTIVE
    if name is None:
        yield active()
        return
    previous = _ACTIVE
    _ACTIVE = get_backend(name)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def _reset() -> None:
    """Testing hook: drop the installed backend and built non-reference
    backends so environment resolution runs fresh."""
    global _ACTIVE
    _ACTIVE = None
    for name in list(_BACKENDS):
        if name != "numpy":
            del _BACKENDS[name]


# ----------------------------------------------------------------------
# Selection-time verification
# ----------------------------------------------------------------------
def _verification_problem():
    """A small deterministic multiply with duplicates, empty rows/cols and a
    hub column — enough structure to exercise every primitive's edge paths."""
    rng = np.random.default_rng(20200417)
    dense_a = (rng.random((17, 13)) < 0.3) * rng.standard_normal((17, 13))
    dense_b = (rng.random((13, 11)) < 0.35) * rng.standard_normal((13, 11))
    dense_a[4, :] = 0.0  # empty row
    dense_b[:, 6] = 0.0  # empty output column
    dense_a[:, 2] = rng.standard_normal(17)  # hub pair: dense A column
    dense_b[2, :] = rng.standard_normal(11)  # ... meeting a dense B row

    def csr_arrays(dense):
        rows, cols = np.nonzero(dense)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=dense.shape[0]), out=indptr[1:])
        return indptr, cols.astype(np.int64), dense[rows, cols].astype(np.float64)

    a_csr = csr_arrays(dense_a)
    b_csr = csr_arrays(dense_b)
    # CSC of A: CSR of the transpose, with data in column-major order.
    a_csc = csr_arrays(dense_a.T)
    return a_csr, a_csc, b_csr, dense_a.shape, dense_b.shape


def _require_equal(name: str, primitive: str, got, want) -> None:
    got_t = got if isinstance(got, tuple) else (got,)
    want_t = want if isinstance(want, tuple) else (want,)
    for i, (g, w) in enumerate(zip(got_t, want_t)):
        same = g == w if np.isscalar(w) else np.array_equal(np.asarray(g), w)
        if not same:
            raise KernelBackendError(
                f"kernel backend {name!r} failed bit-identity verification: "
                f"{primitive} output {i} differs from the NumPy reference"
            )


def verify_backend(backend: KernelBackend) -> None:
    """Assert every primitive matches the NumPy reference bit for bit.

    Runs the candidate and the reference over a deterministic multiply and
    requires exact equality — integer structure and float64 sums.  Raises
    :class:`~repro.errors.KernelBackendError` naming the first primitive
    that diverges; success means the backend cannot change any result.
    """
    ref = NUMPY_BACKEND
    (a_indptr, a_indices, a_data), (ac_indptr, ac_indices, ac_data), (
        b_indptr, b_indices, b_data,
    ), a_shape, b_shape = _verification_problem()

    want_outer = ref.expand_outer_indices(ac_indptr, ac_indices, b_indptr, b_indices)
    _require_equal(
        backend.name, "expand_outer_indices",
        backend.expand_outer_indices(ac_indptr, ac_indices, b_indptr, b_indices),
        want_outer,
    )
    want_row = ref.expand_row_indices(a_indptr, a_indices, b_indptr, b_indices)
    _require_equal(
        backend.name, "expand_row_indices",
        backend.expand_row_indices(a_indptr, a_indices, b_indptr, b_indices),
        want_row,
    )
    rows, cols, a_idx, b_idx = want_row
    n_rows, n_cols = a_shape[0], b_shape[1]
    want_merge = ref.merge_symbolic(rows, cols, n_rows, n_cols)
    _require_equal(
        backend.name, "merge_symbolic",
        backend.merge_symbolic(rows, cols, n_rows, n_cols),
        want_merge,
    )
    order, group, n_groups = want_merge[0], want_merge[1], want_merge[2]
    vals = a_data[a_idx] * b_data[b_idx]
    _require_equal(
        backend.name, "segmented_sum",
        backend.segmented_sum(vals, order, group, n_groups),
        ref.segmented_sum(vals, order, group, n_groups),
    )
    _require_equal(
        backend.name, "gather_multiply_sum",
        backend.gather_multiply_sum(
            a_data, b_data, a_idx[order], b_idx[order], group, n_groups
        ),
        ref.gather_multiply_sum(
            a_data, b_data, a_idx[order], b_idx[order], group, n_groups
        ),
    )
    # k-way merge: three interleaved (hence individually ascending, mutually
    # overlapping, duplicate-bearing) slices of the sorted product stream.
    sorted_keys, sorted_vals = (
        (rows.astype(np.int64) * np.int64(n_cols) + cols)[order], vals[order]
    )
    streams = [(sorted_keys[s::3], sorted_vals[s::3]) for s in range(3)]
    m_keys = np.concatenate([k for k, _ in streams])
    m_vals = np.concatenate([v for _, v in streams])
    starts = np.zeros(4, dtype=np.int64)
    np.cumsum([len(k) for k, _ in streams], out=starts[1:])
    _require_equal(
        backend.name, "kway_merge",
        backend.kway_merge(m_keys, m_vals, starts),
        ref.kway_merge(m_keys, m_vals, starts),
    )
