"""Node-similarity analytics — the paper's second motivating application.

Common-neighbour counting, cosine similarity and Jaccard similarity between
all node pairs reduce to the product ``A @ A^T`` (or ``A^2`` on symmetric
graphs) — exactly the spGEMM workload the paper optimises.  Any
:class:`~repro.spgemm.base.SpGEMMAlgorithm` can serve as the engine; like
the other apps, a caller-held :class:`~repro.spgemm.session.IterativeSession`
is also accepted so repeated queries on one graph replay their plan.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError
from repro.sparse.csr import CSRMatrix
from repro.spgemm.base import SpGEMMAlgorithm
from repro.spgemm.session import IterativeSession

__all__ = ["common_neighbors", "cosine_similarity", "jaccard_similarity", "top_similar_pairs"]


def common_neighbors(
    adjacency: CSRMatrix, engine: SpGEMMAlgorithm | IterativeSession
) -> CSRMatrix:
    """Count shared out-neighbours for every node pair: ``A @ A^T``.

    Entry (i, j) is ``|N(i) ∩ N(j)|`` for a 0/1 adjacency matrix (weighted
    graphs yield the weighted overlap).
    """
    session = IterativeSession.wrap(engine)
    return session.multiply(adjacency, adjacency.transpose())


def cosine_similarity(
    adjacency: CSRMatrix, engine: SpGEMMAlgorithm | IterativeSession
) -> CSRMatrix:
    """Cosine similarity of neighbourhood vectors for every node pair.

    ``cos(i, j) = (A A^T)_{ij} / (|A_i| |A_j|)`` — the common-neighbour
    matrix rescaled by row norms.
    """
    overlap = common_neighbors(adjacency, engine)
    norms = _row_norms(adjacency)
    with np.errstate(divide="ignore"):
        scale = np.where(norms > 0, 1.0 / np.maximum(norms, 1e-300), 0.0)
    row_of = np.repeat(np.arange(overlap.n_rows, dtype=np.int64), overlap.row_nnz())
    data = overlap.data * scale[row_of] * scale[overlap.indices]
    return CSRMatrix(overlap.shape, overlap.indptr.copy(), overlap.indices.copy(), data)


def jaccard_similarity(
    adjacency: CSRMatrix, engine: SpGEMMAlgorithm | IterativeSession
) -> CSRMatrix:
    """Jaccard similarity of out-neighbourhoods for every node pair.

    ``J(i, j) = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|`` with
    ``|union| = deg(i) + deg(j) - |intersection|``.  Defined for 0/1
    adjacency; weighted inputs are treated as unweighted structure.
    """
    pattern = CSRMatrix(
        adjacency.shape,
        adjacency.indptr.copy(),
        adjacency.indices.copy(),
        np.ones(adjacency.nnz),
    )
    overlap = common_neighbors(pattern, engine)
    degree = pattern.row_nnz().astype(np.float64)
    row_of = np.repeat(np.arange(overlap.n_rows, dtype=np.int64), overlap.row_nnz())
    union = degree[row_of] + degree[overlap.indices] - overlap.data
    data = np.where(union > 0, overlap.data / np.maximum(union, 1e-300), 0.0)
    return CSRMatrix(overlap.shape, overlap.indptr.copy(), overlap.indices.copy(), data)


def top_similar_pairs(
    similarity: CSRMatrix, k: int, *, exclude_self: bool = True
) -> list[tuple[int, int, float]]:
    """The ``k`` highest-similarity (i, j) pairs, i < j, sorted descending."""
    if similarity.n_rows != similarity.n_cols:
        raise ShapeMismatchError("similarity matrix must be square")
    coo = similarity.to_coo()
    mask = coo.rows < coo.cols if exclude_self else np.ones(coo.nnz, dtype=bool)
    rows, cols, vals = coo.rows[mask], coo.cols[mask], coo.vals[mask]
    if len(vals) == 0:
        return []
    order = np.argsort(vals)[::-1][:k]
    return [(int(rows[i]), int(cols[i]), float(vals[i])) for i in order]


def _row_norms(m: CSRMatrix) -> np.ndarray:
    norms_sq = np.zeros(m.n_rows)
    row_of = np.repeat(np.arange(m.n_rows, dtype=np.int64), m.row_nnz())
    np.add.at(norms_sq, row_of, m.data * m.data)
    return np.sqrt(norms_sq)
