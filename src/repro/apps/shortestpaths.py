"""Bounded-hop shortest paths via tropical (min, +) spGEMM.

``D_k = D_{k-1} (min,+) W`` gives cheapest path costs using at most k edges —
the classic algebraic-path formulation, here running on the library's
semiring engine.  Distances converge to all-pairs shortest paths once k
reaches the graph's hop diameter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import check_multipliable
from repro.plan.cache import PlanCache
from repro.spgemm.semiring import MIN_PLUS
from repro.spgemm.session import IterativeSession

__all__ = ["k_hop_shortest_paths", "single_source_distances"]


def _with_zero_diagonal(w: CSRMatrix) -> CSRMatrix:
    """min(W, 0-diagonal): allow paths to stop early (use fewer than k edges)."""
    n = w.n_rows
    coo = w.to_coo()
    rows = np.concatenate([coo.rows, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([coo.cols, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([coo.vals, np.zeros(n)])
    # Coalesce with MIN semantics: keep the cheaper of duplicate entries.
    keys = rows * n + cols
    order = np.argsort(keys, kind="stable")
    keys, vals = keys[order], vals[order]
    boundaries = np.empty(len(keys), dtype=bool)
    boundaries[0] = True
    boundaries[1:] = keys[1:] != keys[:-1]
    reduced = np.minimum.reduceat(vals, np.flatnonzero(boundaries))
    ukeys = keys[boundaries]
    out = CSRMatrix(
        (n, n),
        np.zeros(n + 1, dtype=np.int64),
        (ukeys % n).astype(np.int64),
        reduced,
    )
    np.cumsum(np.bincount((ukeys // n).astype(np.int64), minlength=n), out=out.indptr[1:])
    return out


def k_hop_shortest_paths(
    weights: CSRMatrix, k: int, *, session: IterativeSession | None = None
) -> CSRMatrix:
    """Cheapest path costs using at most ``k`` edges (stored entries only).

    Args:
        weights: non-negative edge weights; absent entries mean no edge.
        k: maximum number of edges per path (k >= 1).
        session: optional :class:`~repro.spgemm.session.IterativeSession`;
            the distance matrix's structure stabilises once all <= k-hop
            pairs are discovered, after which each relaxation is a structure
            hit replaying only the (min, +) numeric phase.

    Returns:
        CSR matrix whose entry (i, j) is the min-cost i->j path of <= k
        edges; the zero diagonal (stay put) is included.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if weights.nnz and weights.data.min() < 0:
        raise ConfigurationError("min-plus paths require non-negative weights")
    check_multipliable(weights.shape, weights.shape)
    step = _with_zero_diagonal(weights)
    dist = step
    cache = session.cache if session is not None else PlanCache()
    for _ in range(k - 1):
        dist = cache.semiring_multiply(dist, step, MIN_PLUS)
    return dist


def single_source_distances(
    weights: CSRMatrix,
    source: int,
    k: int,
    *,
    session: IterativeSession | None = None,
) -> np.ndarray:
    """Distances from ``source`` using at most ``k`` edges (inf = unreached)."""
    if not 0 <= source < weights.n_rows:
        raise ConfigurationError(f"source {source} out of range")
    dist = k_hop_shortest_paths(weights, k, session=session)
    out = np.full(weights.n_cols, np.inf)
    cols, vals = dist.row(source)
    out[cols] = vals
    return out
