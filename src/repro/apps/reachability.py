"""Multi-hop reachability and recommendation — the paper's third motivating
application ("link prediction and recommendation").

``A^k`` counts k-step walks; thresholded boolean powers give k-hop
reachability sets.  Chained spGEMM is the heaviest of the motivating
workloads — every hop multiplies an increasingly dense matrix — and is where
an optimised engine pays off most.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.spgemm.base import SpGEMMAlgorithm
from repro.spgemm.session import IterativeSession

__all__ = ["WalkCounts", "k_hop_walks", "k_hop_reachability", "recommend_by_paths"]


@dataclass(frozen=True)
class WalkCounts:
    """Walk-count matrices for hops 1..k."""

    hops: list[CSRMatrix]

    @property
    def k(self) -> int:
        return len(self.hops)

    def at(self, hop: int) -> CSRMatrix:
        """1-indexed access: ``at(1)`` is the adjacency itself."""
        return self.hops[hop - 1]


def k_hop_walks(
    adjacency: CSRMatrix, k: int, engine: SpGEMMAlgorithm | IterativeSession
) -> WalkCounts:
    """Walk-count matrices ``A, A^2, ..., A^k`` via chained spGEMM.

    The left operand densifies every hop, so each product has a new
    structure; a session-held plan cache still pays off when several calls
    share the adjacency (or when walk counts saturate early).
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    session = IterativeSession.wrap(engine)
    hops = [adjacency]
    current = adjacency
    for _ in range(k - 1):
        current = session.multiply(current, adjacency)
        hops.append(current)
    return WalkCounts(hops)


def k_hop_reachability(
    adjacency: CSRMatrix, k: int, engine: SpGEMMAlgorithm | IterativeSession
) -> CSRMatrix:
    """Boolean k-hop reachability: which nodes are within <= k hops.

    Walk counts are clamped to 1 after every hop (a boolean semiring
    emulated over the numeric engine), keeping intermediate densities — and
    hence spGEMM cost — bounded.  Once the frontier's support stops growing
    (reachability saturates), every further hop is a structure hit and runs
    as a numeric replay.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    session = IterativeSession.wrap(engine)
    bool_adjacency = _booleanize(adjacency)
    reach = bool_adjacency
    frontier = reach
    for _ in range(k - 1):
        frontier = _booleanize(session.multiply(frontier, bool_adjacency))
        from repro.sparse.ops import add

        reach = _booleanize(add(reach, frontier))
    return reach


def recommend_by_paths(
    adjacency: CSRMatrix,
    user: int,
    engine: SpGEMMAlgorithm | IterativeSession,
    *,
    n_recommendations: int = 5,
) -> list[tuple[int, float]]:
    """Friend-of-friend recommendation: strongest 2-path endpoints not
    already adjacent to ``user``."""
    if not 0 <= user < adjacency.n_rows:
        raise ConfigurationError(f"user {user} out of range")
    two_hop = k_hop_walks(adjacency, 2, engine).at(2)
    cols, scores = two_hop.row(user)
    direct, _ = adjacency.row(user)
    known = set(direct.tolist()) | {user}
    candidates = [
        (int(c), float(s)) for c, s in zip(cols, scores) if int(c) not in known
    ]
    candidates.sort(key=lambda cs: (-cs[1], cs[0]))
    return candidates[:n_recommendations]


def _booleanize(m: CSRMatrix) -> CSRMatrix:
    return CSRMatrix(
        m.shape, m.indptr.copy(), m.indices.copy(), np.ones(m.nnz, dtype=np.float64)
    )
