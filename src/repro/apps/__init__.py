"""Graph-analytics applications built on the spGEMM engines.

The paper's introduction motivates spGEMM with three SNS workloads —
ranking, similarity computation, and link prediction / recommendation.  This
subpackage implements all three against the library's public API, so any
:class:`~repro.spgemm.base.SpGEMMAlgorithm` (including the Block Reorganizer)
can serve as the multiplication engine.
"""

from repro.apps.pagerank import (
    PageRankResult,
    batched_personalized_pagerank,
    pagerank,
    transition_matrix,
)
from repro.apps.reachability import (
    WalkCounts,
    k_hop_reachability,
    k_hop_walks,
    recommend_by_paths,
)
from repro.apps.shortestpaths import k_hop_shortest_paths, single_source_distances
from repro.apps.similarity import (
    common_neighbors,
    cosine_similarity,
    jaccard_similarity,
    top_similar_pairs,
)

__all__ = [
    "PageRankResult",
    "pagerank",
    "transition_matrix",
    "batched_personalized_pagerank",
    "WalkCounts",
    "k_hop_walks",
    "k_hop_reachability",
    "recommend_by_paths",
    "k_hop_shortest_paths",
    "single_source_distances",
    "common_neighbors",
    "cosine_similarity",
    "jaccard_similarity",
    "top_similar_pairs",
]
