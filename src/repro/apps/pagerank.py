"""PageRank — the paper's first motivating application ("ranking").

Standard damped power iteration over a column-stochastic transition matrix,
built with the library's sparse substrate.  spGEMM enters twice: the batched
variant multiplies the transition matrix by a sparse block of seed vectors,
and :func:`pagerank_spgemm` runs the power iteration itself as a sequence of
sparse products whose operand structure never changes — the canonical
customer of the plan cache (lowering and symbolic expansion happen once, all
later iterations replay the numeric phase).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spmv
from repro.spgemm.base import SpGEMMAlgorithm
from repro.spgemm.session import IterativeSession

__all__ = [
    "PageRankResult",
    "pagerank",
    "pagerank_spgemm",
    "transition_matrix",
    "batched_personalized_pagerank",
]


@dataclass(frozen=True)
class PageRankResult:
    """Scores plus convergence diagnostics."""

    scores: np.ndarray
    iterations: int
    residual: float
    converged: bool


def transition_matrix(adjacency: CSRMatrix) -> CSRMatrix:
    """Column-stochastic transition matrix of a (possibly weighted) digraph.

    ``P[i, j] = A[j, i] / strength(j)`` where ``strength`` is the row's total
    outgoing weight: every source node's outgoing mass is normalised to 1.
    Dangling nodes (no out-edges) keep empty columns; :func:`pagerank`
    redistributes their mass uniformly.
    """
    strength = np.zeros(adjacency.n_rows, dtype=np.float64)
    row_of = np.repeat(np.arange(adjacency.n_rows, dtype=np.int64), adjacency.row_nnz())
    np.add.at(strength, row_of, adjacency.data)
    transposed = adjacency.transpose()
    scale = np.where(strength > 0, strength, 1.0)
    data = transposed.data / scale[transposed.indices]
    return CSRMatrix(transposed.shape, transposed.indptr, transposed.indices.copy(), data)


def pagerank(
    adjacency: CSRMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> PageRankResult:
    """Damped PageRank of a directed graph given its adjacency matrix."""
    if not 0.0 < damping < 1.0:
        raise ConfigurationError(f"damping must be in (0, 1), got {damping}")
    n = adjacency.n_rows
    if n == 0:
        return PageRankResult(np.zeros(0), 0, 0.0, True)
    p = transition_matrix(adjacency)
    dangling = adjacency.row_nnz() == 0

    scores = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    residual = np.inf
    for iteration in range(1, max_iter + 1):
        dangling_mass = scores[dangling].sum() / n
        updated = damping * (spmv(p, scores) + dangling_mass) + teleport
        residual = float(np.abs(updated - scores).sum())
        scores = updated
        if residual < tol:
            return PageRankResult(scores, iteration, residual, True)
    return PageRankResult(scores, max_iter, residual, False)


def pagerank_spgemm(
    adjacency: CSRMatrix,
    engine: SpGEMMAlgorithm | IterativeSession,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> PageRankResult:
    """PageRank power iteration run as fixed-structure spGEMM products.

    Each step computes ``scores_row @ P^T`` with the supplied engine, where
    the score row keeps *full support* (all n entries stored, zeros
    explicit).  Both operand structures are therefore identical every
    iteration, so with a session-held plan cache the whole run lowers and
    expands symbolically exactly once; iterations 2..N replay the numeric
    phase.  Mathematically mirrors :func:`pagerank` (same damping, teleport
    and dangling-mass handling); results agree to float rounding, not bit
    for bit, because the summation order differs.
    """
    if not 0.0 < damping < 1.0:
        raise ConfigurationError(f"damping must be in (0, 1), got {damping}")
    n = adjacency.n_rows
    if n == 0:
        return PageRankResult(np.zeros(0), 0, 0.0, True)
    session = IterativeSession.wrap(engine)
    p_t = transition_matrix(adjacency).transpose()  # right-multiplying rows
    dangling = adjacency.row_nnz() == 0

    scores = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    full_indptr = np.array([0, n], dtype=np.int64)
    full_cols = np.arange(n, dtype=np.int64)
    residual = np.inf
    for iteration in range(1, max_iter + 1):
        dangling_mass = scores[dangling].sum() / n
        score_row = CSRMatrix((1, n), full_indptr.copy(), full_cols.copy(), scores)
        product = session.multiply(score_row, p_t)
        propagated = np.zeros(n, dtype=np.float64)
        cols, vals = product.row(0)
        propagated[cols] = vals
        updated = damping * (propagated + dangling_mass) + teleport
        residual = float(np.abs(updated - scores).sum())
        scores = updated
        if residual < tol:
            return PageRankResult(scores, iteration, residual, True)
    return PageRankResult(scores, max_iter, residual, False)


def batched_personalized_pagerank(
    adjacency: CSRMatrix,
    seeds: CSRMatrix,
    engine: SpGEMMAlgorithm | IterativeSession,
    *,
    damping: float = 0.85,
    n_steps: int = 3,
) -> CSRMatrix:
    """Approximate personalised PageRank for many seed sets at once.

    Runs ``n_steps`` of the push iteration for a whole batch: the seed block
    ``S`` (one sparse row per query, columns = seed nodes) is repeatedly
    multiplied by the transition matrix with the supplied spGEMM engine —
    the batched-analytics pattern that motivates spGEMM in the paper's
    introduction.  The score block's structure grows as mass spreads and
    stabilises once its support saturates, at which point a session-held
    plan cache serves every remaining step by numeric replay.

    Returns the matrix of approximate scores, one row per query.
    """
    if seeds.n_cols != adjacency.n_rows:
        raise ConfigurationError("seed columns must index graph nodes")
    session = IterativeSession.wrap(engine)
    p_t = transition_matrix(adjacency).transpose()  # right-multiplying rows
    scores = seeds
    teleport = 1.0 - damping
    accumulated = _scale(seeds, teleport)
    for _ in range(n_steps):
        scores = _scale(session.multiply(scores, p_t), damping)
        accumulated = _add(accumulated, _scale(scores, teleport))
    return accumulated


def _scale(m: CSRMatrix, s: float) -> CSRMatrix:
    return CSRMatrix(m.shape, m.indptr.copy(), m.indices.copy(), m.data * s)


def _add(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    from repro.sparse.ops import add

    return add(a, b)
