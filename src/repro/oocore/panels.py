"""Row-panel decomposition of A for the out-of-core executor.

``C = A @ B`` decomposes exactly along rows of A: each contiguous row panel
``A[lo:hi]`` produces the disjoint row slice ``C[lo:hi]``, so panel results
combine without any cross-panel arithmetic and the panel path is
bit-identical to the in-memory path row by row (the triplet stream a panel
expands is the full stream's restriction to those rows, in the same relative
order, and the coalescing merge's stable sort keys on (row, col)).

The planner sizes panels from the paper's precalculated workload sums
(:func:`repro.plan.estimate.row_flops` — products landing in each output
row) so that one panel's intermediate expansion stays under the product
budget.  A single row whose own workload exceeds the budget becomes a
one-row panel flagged ``oversized`` — it is processed anyway (correctness
over the budget) and counted, so callers can see the budget was overrun and
by which rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.plan.estimate import row_flops
from repro.sparse.csr import CSRMatrix

__all__ = ["Panel", "plan_panels", "slice_rows"]


@dataclass(frozen=True)
class Panel:
    """One contiguous row range of A, sized to fit the product budget.

    Attributes:
        index: position in panel order (also the combine order).
        row_start: first A row in the panel (inclusive).
        row_stop: one past the last A row.
        products: intermediate products this panel expands to.
        oversized: True when a single row alone exceeds the budget.
    """

    index: int
    row_start: int
    row_stop: int
    products: int
    oversized: bool = False

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start


def plan_panels(a: CSRMatrix, b: CSRMatrix, max_products: int) -> list[Panel]:
    """Greedily cut A's rows into contiguous panels of ≤ ``max_products``.

    Every row lands in exactly one panel and panels are returned in row
    order (the combine order).  An empty A yields a single empty panel so
    the executor's pipeline needs no special case.
    """
    if max_products < 1:
        raise ValueError(f"max_products must be >= 1, got {max_products}")
    work = row_flops(a, b)
    n_rows = a.n_rows
    if n_rows == 0:
        return [Panel(index=0, row_start=0, row_stop=0, products=0)]
    panels: list[Panel] = []
    lo = 0
    acc = 0
    for i in range(n_rows):
        w = int(work[i])
        if i > lo and acc + w > max_products:
            panels.append(Panel(len(panels), lo, i, acc, acc > max_products))
            lo, acc = i, 0
        acc += w
    panels.append(Panel(len(panels), lo, n_rows, acc, acc > max_products))
    return panels


def slice_rows(a: CSRMatrix, lo: int, hi: int) -> CSRMatrix:
    """The row panel ``a[lo:hi]`` as its own CSR matrix (copied arrays)."""
    start, stop = int(a.indptr[lo]), int(a.indptr[hi])
    indptr = a.indptr[lo : hi + 1].astype(np.int64) - np.int64(start)
    return CSRMatrix(
        (hi - lo, a.n_cols),
        indptr,
        a.indices[start:stop].copy(),
        a.data[start:stop].copy(),
    )
