"""Disk spill store for out-of-core partial products.

When the chunked executor's resident partials exceed the memory budget, the
oldest partial (a coalesced ``(keys, vals)`` pair for one row panel) is
written to disk and its arrays dropped.  The store owns one private
directory per process — ``<base>/repro-oocore-<pid>-<token>/`` — so
concurrent runs sharing a ``--spill-dir`` never collide, and files are
content-addressed by the SHA-256 of their payload so a re-spill of identical
data is a no-op and read-back can verify integrity.

Crash safety mirrors the exec plane's shared-memory pools: the store
registers with :mod:`repro.runtime.lifecycle`, whose SIGINT/SIGTERM/atexit
sweep calls :meth:`SpillStore.close` and removes the directory before the
process dies.  Directories orphaned by an unsweepable death (SIGKILL) are
reclaimed by :func:`sweep_stale`, which every new store runs against its
base directory: a leftover ``repro-oocore-<pid>-*`` directory whose pid is
no longer alive is deleted.
"""

from __future__ import annotations

import hashlib
import io
import os
import secrets
import shutil
from pathlib import Path

import numpy as np

from repro.errors import OutOfCoreError
from repro.runtime import lifecycle

__all__ = ["SPILL_PREFIX", "SpillStore", "sweep_stale"]

#: Directory-name prefix for per-process spill directories.
SPILL_PREFIX = "repro-oocore"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, owned elsewhere
        return True
    return True


def sweep_stale(base: Path) -> list[str]:
    """Delete orphaned spill directories under ``base``; return their names.

    A directory is orphaned when it matches ``repro-oocore-<pid>-*`` and no
    process with that pid is alive — the owner died without its lifecycle
    sweep (SIGKILL, power loss).  Unparseable names are left alone.
    """
    removed: list[str] = []
    if not base.is_dir():
        return removed
    for entry in base.iterdir():
        if not entry.is_dir() or not entry.name.startswith(SPILL_PREFIX + "-"):
            continue
        parts = entry.name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        shutil.rmtree(entry, ignore_errors=True)
        removed.append(entry.name)
    return removed


class SpillStore:
    """Content-addressed on-disk store for spilled ``(keys, vals)`` partials.

    ``spill`` returns an opaque ticket (the content digest); ``read`` loads
    the arrays back and re-verifies the digest.  ``close`` removes the whole
    per-process directory; it is idempotent and also runs from the runtime
    lifecycle sweeper on SIGINT/SIGTERM/interpreter exit.
    """

    def __init__(self, base: str | os.PathLike | None = None) -> None:
        root = Path(base) if base is not None else Path(os.environ.get("TMPDIR", "/tmp"))
        try:
            root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise OutOfCoreError(f"cannot create spill directory {root}: {exc}") from exc
        if not os.access(root, os.W_OK):
            raise OutOfCoreError(f"spill directory {root} is not writable")
        self.swept_stale = sweep_stale(root)
        self._dir = root / f"{SPILL_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._dir.mkdir()
        self._closed = False
        self.bytes_spilled = 0
        self.spill_count = 0
        lifecycle.install(self)

    @property
    def path(self) -> Path:
        """The per-process spill directory (exists until :meth:`close`)."""
        return self._dir

    def spill(self, keys: np.ndarray, vals: np.ndarray) -> str:
        """Write one partial to disk; return its content-digest ticket."""
        if self._closed:
            raise OutOfCoreError("spill store is closed")
        buf = io.BytesIO()
        np.savez(buf, keys=np.asarray(keys, dtype=np.int64),
                 vals=np.asarray(vals, dtype=np.float64))
        payload = buf.getvalue()
        digest = hashlib.sha256(payload).hexdigest()
        target = self._dir / f"{digest}.npz"
        if not target.exists():
            # Write-then-rename so a partial write from a crash mid-spill
            # never masquerades as a complete, content-verified file.
            tmp = target.with_suffix(".tmp")
            tmp.write_bytes(payload)
            os.replace(tmp, target)
            self.bytes_spilled += len(payload)
        self.spill_count += 1
        return digest

    def read(self, ticket: str) -> tuple[np.ndarray, np.ndarray]:
        """Load a spilled partial back; verify its content digest."""
        target = self._dir / f"{ticket}.npz"
        try:
            payload = target.read_bytes()
        except OSError as exc:
            raise OutOfCoreError(f"spilled partial {ticket} unreadable: {exc}") from exc
        if hashlib.sha256(payload).hexdigest() != ticket:
            raise OutOfCoreError(f"spilled partial {ticket} failed its content check")
        with np.load(io.BytesIO(payload)) as archive:
            return archive["keys"], archive["vals"]

    def close(self) -> None:
        """Remove the spill directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
