"""The chunked out-of-core executor: panel multiplies + spilling merge tree.

:func:`chunked_multiply` computes ``C = A·B`` under a memory budget that the
full intermediate expansion would blow through.  It cuts A into row panels
sized by the paper's precalculated workload sums (:mod:`repro.oocore.panels`),
runs each panel through the *existing* lowering/exec plane (the scheme's own
``multiply``), and combines the per-panel partial products with a k-way merge
tree over the :func:`~repro.kernels.numpy_backend.kway_merge` primitive.
Partials that would push the resident set over budget are spilled to disk
through a crash-safe :class:`~repro.oocore.spill.SpillStore`.

Bit-identity: row panels of A produce disjoint row slices of C, and within a
panel the product stream is the full stream's restriction to those rows in
the same relative order — so every output entry is the same sequence of
float64 additions as the in-memory path, and the merge tree (whose streams
carry globally disjoint, panel-ordered keys) only concatenates coalesced
groups, never re-associates them.  ``chunked_multiply`` is therefore
bit-identical to ``algo.multiply`` on every scheme; the oocore CI leg and
``repro compare --mem-budget`` assert exactly that.

Per-panel work records ``oocore.panel[i]`` observability spans and the
returned :class:`OocStats` carries the spill and peak-RSS counters that
:func:`repro.metrics.oocprof.format_ooc_stats` renders.
"""

from __future__ import annotations

import resource
from dataclasses import dataclass, field

import numpy as np

from repro import kernels, obs
from repro.oocore.budget import parse_mem_budget, products_for_budget
from repro.oocore.panels import Panel, plan_panels, slice_rows
from repro.oocore.spill import SpillStore
from repro.runtime import lifecycle
from repro.sparse.csr import CSRMatrix
from repro.spgemm.base import MultiplyContext, SpGEMMAlgorithm, validate_operands

__all__ = ["DEFAULT_FAN_IN", "OocStats", "chunked_multiply"]

#: Merge-tree fan-in: how many partial streams one k-way merge consumes.
DEFAULT_FAN_IN = 8


def _peak_rss_bytes() -> int:
    """Lifetime peak resident set of this process (Linux ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


@dataclass
class OocStats:
    """Counters from one chunked multiply (all deterministic except RSS)."""

    budget_bytes: int
    max_products: int
    n_panels: int = 0
    n_oversized: int = 0
    total_products: int = 0
    spill_count: int = 0
    bytes_spilled: int = 0
    merge_rounds: int = 0
    resident_peak_bytes: int = 0
    peak_rss_bytes: int = 0
    panels: list[Panel] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-able summary (panel list reduced to its row ranges)."""
        return {
            "budget_bytes": self.budget_bytes,
            "max_products": self.max_products,
            "n_panels": self.n_panels,
            "n_oversized": self.n_oversized,
            "total_products": self.total_products,
            "spill_count": self.spill_count,
            "bytes_spilled": self.bytes_spilled,
            "merge_rounds": self.merge_rounds,
            "resident_peak_bytes": self.resident_peak_bytes,
            "peak_rss_bytes": self.peak_rss_bytes,
            "panel_rows": [[p.row_start, p.row_stop] for p in self.panels],
        }


class _Partial:
    """One coalesced (keys, vals) stream, resident or spilled."""

    __slots__ = ("keys", "vals", "ticket", "nbytes")

    def __init__(self, keys: np.ndarray, vals: np.ndarray) -> None:
        self.keys = keys
        self.vals = vals
        self.ticket: str | None = None
        self.nbytes = keys.nbytes + vals.nbytes

    @property
    def resident(self) -> bool:
        return self.keys is not None

    def spill_to(self, store: SpillStore) -> None:
        self.ticket = store.spill(self.keys, self.vals)
        self.keys = None
        self.vals = None

    def load(self, store: SpillStore | None) -> tuple[np.ndarray, np.ndarray]:
        if self.keys is not None:
            return self.keys, self.vals
        assert store is not None and self.ticket is not None
        return store.read(self.ticket)


def chunked_multiply(
    algo: SpGEMMAlgorithm,
    a: CSRMatrix,
    b: CSRMatrix | None = None,
    *,
    mem_budget: int | str,
    spill_dir: str | None = None,
    fan_in: int = DEFAULT_FAN_IN,
) -> tuple[CSRMatrix, OocStats]:
    """Compute ``A·B`` with ``algo`` under ``mem_budget`` bytes; see module doc.

    Returns the product (bit-identical to ``algo.multiply`` on the same
    operands) and the run's :class:`OocStats`.  ``spill_dir`` hosts the
    crash-safe spill store (``$TMPDIR`` by default); ``fan_in`` is the merge
    tree's arity.  Deliberately does *not* take a plan cache: caching one
    recipe per panel would retain budget-sized gather arrays per LRU entry,
    defeating the budget.
    """
    b = a if b is None else b
    validate_operands(a, b)
    budget_bytes = parse_mem_budget(mem_budget)
    max_products = products_for_budget(budget_bytes)
    if fan_in < 2:
        raise ValueError(f"fan_in must be >= 2, got {fan_in}")
    n_rows, n_cols = a.n_rows, b.n_cols
    stats = OocStats(budget_bytes=budget_bytes, max_products=max_products)

    store: SpillStore | None = None
    try:
        with obs.span(f"oocore.chunked[{algo.name}]", "oocore") as root:
            with obs.span("oocore.plan_panels", "oocore") as sp:
                panels = plan_panels(a, b, max_products)
                stats.panels = panels
                stats.n_panels = len(panels)
                stats.n_oversized = sum(p.oversized for p in panels)
                stats.total_products = sum(p.products for p in panels)
                sp.add(
                    panels=stats.n_panels,
                    oversized=stats.n_oversized,
                    products=stats.total_products,
                )

            partials: list[_Partial] = []
            resident_bytes = 0
            for panel in panels:
                with obs.span(f"oocore.panel[{panel.index}]", "oocore") as sp:
                    a_panel = slice_rows(a, panel.row_start, panel.row_stop)
                    ctx = MultiplyContext.build(a_panel, b)
                    c_panel = algo.multiply(ctx)
                    # Global flat (row, col) keys: the panel's rows shifted to
                    # their position in C.  Rows are disjoint across panels.
                    local_rows = np.repeat(
                        np.arange(panel.n_rows, dtype=np.int64), c_panel.row_nnz()
                    )
                    global_rows = local_rows + np.int64(panel.row_start)
                    keys = global_rows * np.int64(n_cols) + c_panel.indices
                    part = _Partial(keys, c_panel.data.copy())
                    partials.append(part)
                    resident_bytes += part.nbytes
                    stats.resident_peak_bytes = max(stats.resident_peak_bytes, resident_bytes)
                    sp.add(
                        rows=panel.n_rows,
                        products=panel.products,
                        nnz=c_panel.nnz,
                        spilled=0,
                    )
                    # Over budget: spill oldest-first until resident again (the
                    # newest partial may itself go if it alone overshoots).
                    while resident_bytes > budget_bytes:
                        victim = next((p for p in partials if p.resident), None)
                        if victim is None:  # pragma: no cover - defensive
                            break
                        if store is None:
                            store = SpillStore(spill_dir)
                        victim.spill_to(store)
                        resident_bytes -= victim.nbytes
                        sp.add(spilled=1)

            with obs.span("oocore.merge_tree", "oocore") as sp:
                while len(partials) > 1:
                    stats.merge_rounds += 1
                    merged: list[_Partial] = []
                    for lo in range(0, len(partials), fan_in):
                        group = partials[lo : lo + fan_in]
                        streams = [p.load(store) for p in group]
                        starts = np.zeros(len(streams) + 1, dtype=np.int64)
                        np.cumsum([len(k) for k, _ in streams], out=starts[1:])
                        keys, vals = kernels.active().kway_merge(
                            np.concatenate([k for k, _ in streams]),
                            np.concatenate([v for _, v in streams]),
                            starts,
                        )
                        part = _Partial(keys, vals)
                        # Intermediate rounds stay budgeted; the last merge's
                        # output is the final result and stays resident.
                        if len(partials) > fan_in and part.nbytes > budget_bytes:
                            if store is None:
                                store = SpillStore(spill_dir)
                            part.spill_to(store)
                        merged.append(part)
                    partials = merged
                sp.add(rounds=stats.merge_rounds)

            keys, vals = partials[0].load(store)
            if store is not None:
                stats.spill_count = store.spill_count
                stats.bytes_spilled = store.bytes_spilled
            stats.peak_rss_bytes = _peak_rss_bytes()
            root.add(
                panels=stats.n_panels,
                spills=stats.spill_count,
                merge_rounds=stats.merge_rounds,
            )
    finally:
        if store is not None:
            lifecycle.uninstall(store)

    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    if len(keys):
        rows = keys // np.int64(n_cols)
        np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
        indices = keys % np.int64(n_cols)
    else:
        indices = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0, dtype=np.float64)
    return CSRMatrix((n_rows, n_cols), indptr, indices, vals), stats
