"""Memory budgets for the out-of-core executor.

A budget is a byte count — given on the CLI as ``--mem-budget 4G`` — that
caps both the intermediate expansion a single row panel may produce and the
partial results the executor keeps resident before spilling.  The panel
planner converts bytes to *products* with :data:`BYTES_PER_PRODUCT`, the
peak working-set cost of one intermediate product through the expansion +
merge pipeline (triplet coordinates, value, flat sort key, sort permutation
and group id — five int64/float64 arrays over the stream, plus slack for
the argsort's internal scratch).
"""

from __future__ import annotations

import re

from repro.errors import OutOfCoreError

__all__ = ["BYTES_PER_PRODUCT", "parse_mem_budget", "products_for_budget"]

#: Peak bytes one intermediate product costs while a panel is expanded and
#: merged: rows + cols + vals triplet (24), flat sort key (8), stable-sort
#: permutation (8), group id (8) — 48 bytes of live arrays per product.
BYTES_PER_PRODUCT = 48

_UNITS = {
    "": 1,
    "B": 1,
    "K": 1 << 10,
    "KB": 1 << 10,
    "M": 1 << 20,
    "MB": 1 << 20,
    "G": 1 << 30,
    "GB": 1 << 30,
    "T": 1 << 40,
    "TB": 1 << 40,
}

_BUDGET = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*$")


def parse_mem_budget(text: str | int) -> int:
    """Parse a memory budget into bytes: ``"4G"``, ``"512M"``, ``"65536"``.

    Accepts an optional binary unit suffix (K/M/G/T, with or without a
    trailing B, case-insensitive) and fractional magnitudes (``"1.5G"``).
    Integers pass through as bytes.  Raises
    :class:`~repro.errors.OutOfCoreError` on anything unparseable or
    non-positive — a zero budget cannot hold even one product.
    """
    if isinstance(text, int):
        size = text
    else:
        match = _BUDGET.match(str(text))
        unit = match.group(2).upper() if match else None
        if match is None or unit not in _UNITS:
            raise OutOfCoreError(
                f"unparseable memory budget {text!r} "
                "(expected e.g. 4G, 512M, 64K, or plain bytes)"
            )
        size = int(float(match.group(1)) * _UNITS[unit])
    if size <= 0:
        raise OutOfCoreError(f"memory budget must be positive, got {text!r}")
    return size


def products_for_budget(budget_bytes: int) -> int:
    """How many intermediate products fit in ``budget_bytes`` (at least 1)."""
    return max(1, budget_bytes // BYTES_PER_PRODUCT)
