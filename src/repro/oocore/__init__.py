"""repro.oocore — memory-budgeted out-of-core spGEMM execution.

The paper's full-scale networks expand to intermediate product streams far
larger than the stand-in datasets the rest of the pipeline defaults to.
This package runs those multiplies under an explicit memory budget
(``--mem-budget`` on the CLI):

* :mod:`repro.oocore.budget` — budget parsing and the bytes-per-product
  working-set model.
* :mod:`repro.oocore.panels` — row-panel decomposition of A, sized from the
  precalculated workload sums so one panel's expansion fits the budget.
* :mod:`repro.oocore.spill` — the crash-safe, content-addressed disk store
  for partials evicted from the resident set.
* :mod:`repro.oocore.executor` — :func:`chunked_multiply`, the driver that
  runs panels through the existing lowering/exec plane and recombines them
  with a k-way merge tree, bit-identical to the in-memory path.

Entry points: :meth:`repro.runtime.Runtime.multiply` routes here whenever
its config carries a budget, and ``repro run/bench/compare`` expose the
flags.
"""

from repro.oocore.budget import BYTES_PER_PRODUCT, parse_mem_budget, products_for_budget
from repro.oocore.executor import DEFAULT_FAN_IN, OocStats, chunked_multiply
from repro.oocore.panels import Panel, plan_panels, slice_rows
from repro.oocore.spill import SpillStore, sweep_stale

__all__ = [
    "BYTES_PER_PRODUCT",
    "DEFAULT_FAN_IN",
    "OocStats",
    "Panel",
    "SpillStore",
    "chunked_multiply",
    "parse_mem_budget",
    "plan_panels",
    "products_for_budget",
    "slice_rows",
    "sweep_stale",
]
