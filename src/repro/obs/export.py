"""Trace export: Chrome trace-event JSON (Perfetto-loadable) + human tree.

The on-disk format is the Chrome trace-event *JSON object format*: a dict
whose ``traceEvents`` list holds one complete (``"ph": "X"``) event per span
plus process-name metadata events, and whose other top-level keys are, per
the format spec, trace metadata.  We use that latitude to embed:

* ``aggregate`` — the deterministic span tree from
  :func:`repro.obs.aggregate.aggregate_spans` (byte-identical for serial and
  parallel runs of the same work), and
* ``otherData`` — free-form run context (command line, GPU, worker count).

Perfetto and ``chrome://tracing`` both open the file directly; the embedded
sections ride along as ignored metadata.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.obs.aggregate import aggregate_spans
from repro.obs.recorder import Span, TraceRecorder

__all__ = ["trace_events", "chrome_payload", "write_trace", "format_span_tree"]


def trace_events(spans: Sequence[Span]) -> list[dict]:
    """Flatten a span tree into Chrome complete events (ts/dur in us)."""
    events: list[dict] = []
    lanes: set[int] = set()

    def emit(span: Span) -> None:
        lanes.add(span.pid)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.t0 * 1e6, 3),
                "dur": round(span.dur * 1e6, 3),
                "pid": span.pid,
                "tid": 0,
                "args": dict(span.counters),
            }
        )
        for child in span.children:
            emit(child)

    for span in spans:
        emit(span)
    for pid in sorted(lanes):
        # Lane naming: 0 is this process, small lanes are bench shard
        # workers, lanes from 1000 up are repro.exec partition workers.
        if pid == 0:
            lane_name = "repro"
        elif pid >= 1000:
            lane_name = f"repro exec worker {pid - 1000}"
        else:
            lane_name = f"repro worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": lane_name},
            }
        )
    return events


def chrome_payload(recorder: TraceRecorder, meta: dict | None = None) -> dict:
    """The full Chrome trace-event JSON object for one recorded run."""
    return {
        "traceEvents": trace_events(recorder.roots),
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
        "aggregate": aggregate_spans(recorder.roots),
    }


def write_trace(path: str, recorder: TraceRecorder, meta: dict | None = None) -> dict:
    """Write the recorded run to ``path`` and return the payload written."""
    payload = chrome_payload(recorder, meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def _format_counters(counters: dict) -> str:
    return " ".join(f"{key}={value}" for key, value in sorted(counters.items()))


def format_span_tree(spans: Sequence[Span], indent: int = 0) -> str:
    """Human-readable span tree with wall times and counters."""
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        pad = "  " * depth
        extra = f"  [{_format_counters(span.counters)}]" if span.counters else ""
        lines.append(f"{pad}{span.name:<40s} {span.dur * 1e3:9.3f} ms{extra}")
        for child in span.children:
            emit(child, depth + 1)

    for span in spans:
        emit(span, indent)
    return "\n".join(lines)
