"""Serving-plane observability: request spans, latency histograms, counters.

The batch pipeline records its story through :mod:`repro.obs` spans, but a
long-lived server cannot install one process-global recorder per request —
requests overlap on the event loop and the batcher's worker threads.  This
module provides the per-request equivalents:

* :class:`RequestTrace` — a lightweight span tree scoped to **one** request
  (parse → validate → admission → batch_wait → session → numeric →
  serialize).  Stages may be recorded from different threads (the loop
  thread and the batcher thread that executes the work); the trace converts
  to ordinary :class:`~repro.obs.recorder.Span` objects, so slow requests
  export through the standard Chrome-trace writer and open in Perfetto next
  to batch traces.
* :class:`StreamingHistogram` — fixed-bucket log-scale latency histogram.
  Quantiles are read from bucket counts, so two runs observing the same
  *set* of requests report through the same deterministic machinery
  regardless of dispatch order or pool width, and the bucket layout maps
  1:1 onto Prometheus histogram exposition.
* :class:`ServingMetrics` — per-route and per-tenant aggregation (requests,
  errors, sheds, latency histograms) plus the admission-side counters the
  server owns (estimate fallbacks, exported traces).

Nothing here touches the network; :mod:`repro.serve.server` assembles these
into ``GET /stats`` and ``GET /metrics`` payloads.
"""

from __future__ import annotations

import bisect
import time
from contextlib import contextmanager

from repro.obs.recorder import Span, TraceRecorder

__all__ = [
    "BUCKET_BOUNDS",
    "NULL_REQUEST_TRACE",
    "RequestTrace",
    "RouteStats",
    "ServingMetrics",
    "StreamingHistogram",
]

#: Histogram bucket upper bounds in seconds: 10 µs doubling every second
#: bucket (factor √2) up to ~80 s, plus an implicit +Inf overflow bucket.
#: √2 spacing bounds the quantile up-rounding error at ~41 % — tight enough
#: that server-side p50/p99 can be cross-checked against client wall clocks
#: (``tools/bench_serve.py`` asserts the agreement).
BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-5 * (2 ** (i / 2)) for i in range(46))

#: Distinct tenants tracked individually before overflow into ``_other``
#: (unbounded tenant cardinality would let a client grow /stats without
#: limit; routes are a fixed set, so only tenants need the cap).
MAX_TRACKED_TENANTS = 64


class StreamingHistogram:
    """Latency histogram over :data:`BUCKET_BOUNDS` with O(1) observe.

    Quantiles return the *upper bound* of the bucket containing the target
    rank — a deterministic function of the bucket counts alone, so serial
    and pooled dispatch of the same request set agree exactly on counts and
    agree on quantiles up to bucket resolution.  The maximum is tracked
    exactly (it doubles as the overflow bucket's quantile value).
    """

    __slots__ = ("counts", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        seconds = max(0.0, float(seconds))
        self.counts[bisect.bisect_left(BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile in seconds (bucket upper bound), or ``None``.

        ``q`` is in ``[0, 1]``; the nearest-rank convention is used
        (``ceil(q * count)``), so ``quantile(1.0)`` is the exact maximum.
        """
        if self.count == 0:
            return None
        target = max(1, -(-int(q * self.count * 1_000_000) // 1_000_000))
        seen = 0
        for idx, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                if idx >= len(BUCKET_BOUNDS):
                    return self.max_seconds
                return min(BUCKET_BOUNDS[idx], self.max_seconds)
        return self.max_seconds  # pragma: no cover - unreachable

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def latency_ms(self) -> dict:
        """The ``/stats`` latency block: count, mean and p50/p90/p99/max."""

        def ms(value: float | None) -> float | None:
            return None if value is None else value * 1e3

        return {
            "count": self.count,
            "mean": ms(self.mean_seconds) if self.count else None,
            "p50": ms(self.quantile(0.50)),
            "p90": ms(self.quantile(0.90)),
            "p99": ms(self.quantile(0.99)),
            "max": ms(self.max_seconds) if self.count else None,
        }

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound_seconds, count)`` pairs, Prometheus style.

        The final pair's bound is ``inf`` and its count equals
        :attr:`count`, exactly the ``le="+Inf"`` exposition invariant.
        """
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(BUCKET_BOUNDS, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class RouteStats:
    """Aggregated serving counters for one route (or one tenant)."""

    __slots__ = ("requests", "errors", "sheds", "histogram")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.sheds = 0
        self.histogram = StreamingHistogram()

    def as_dict(self, *, include_buckets: bool = False) -> dict:
        payload = {
            "requests": self.requests,
            "errors": self.errors,
            "sheds": self.sheds,
            "latency_ms": self.histogram.latency_ms(),
        }
        if include_buckets:
            payload["buckets"] = [
                [bound, count] for bound, count in self.histogram.buckets()
            ]
        return payload


class ServingMetrics:
    """Per-route / per-tenant latency + shed aggregation for one server.

    All mutation happens on the server's event-loop thread (observations are
    recorded after the awaited handler returns), so no lock is needed; the
    batcher thread never touches this object.
    """

    def __init__(self) -> None:
        self.routes: dict[str, RouteStats] = {}
        self.tenants: dict[str, RouteStats] = {}
        self.estimate_fallbacks = 0
        self.traces_written = 0

    def _tenant(self, tenant: str) -> RouteStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            if len(self.tenants) >= MAX_TRACKED_TENANTS:
                tenant = "_other"
            stats = self.tenants.setdefault(tenant, RouteStats())
        return stats

    def observe(self, route: str, tenant: str, seconds: float, status: int) -> None:
        """Record one completed (or failed) request."""
        for stats in (self.routes.setdefault(route, RouteStats()), self._tenant(tenant)):
            stats.requests += 1
            if status >= 400:
                stats.errors += 1
            stats.histogram.observe(seconds)

    def shed(self, route: str, tenant: str) -> None:
        """Record an admission rejection (503) against route and tenant."""
        self.routes.setdefault(route, RouteStats()).sheds += 1
        self._tenant(tenant).sheds += 1

    def snapshot(self, *, include_buckets: bool = False) -> dict:
        """The ``serving`` section of ``/stats`` (sans batcher gauges)."""
        return {
            "routes": {
                route: stats.as_dict(include_buckets=include_buckets)
                for route, stats in sorted(self.routes.items())
            },
            "tenants": {
                tenant: stats.as_dict(include_buckets=include_buckets)
                for tenant, stats in sorted(self.tenants.items())
            },
            "estimate_fallbacks": self.estimate_fallbacks,
            "traces_written": self.traces_written,
        }


class RequestTrace:
    """The span tree of one served request, safe across a thread handoff.

    Stages are appended as ``(name, t0, dur, counters)`` tuples relative to
    the request's arrival; list appends are atomic under the GIL and each
    stage is recorded by exactly one thread at a time (loop thread for
    parse/validate/admission/serialize, batcher thread for
    batch_wait/session/numeric), so no lock is required.
    """

    __slots__ = ("route", "tenant", "origin", "stages", "counters")

    def __init__(self, route: str, tenant: str = "default") -> None:
        self.route = route
        self.tenant = tenant
        self.origin = time.perf_counter()
        self.stages: list[tuple[str, float, float, dict]] = []
        self.counters: dict[str, int] = {}

    def elapsed(self) -> float:
        """Seconds since the request arrived."""
        return time.perf_counter() - self.origin

    @contextmanager
    def stage(self, name: str, **counters: int):
        """Record the block as one stage span."""
        t0 = self.elapsed()
        try:
            yield self
        finally:
            self.record(name, t0, self.elapsed() - t0, **counters)

    def record(self, name: str, t0: float, dur: float, **counters: int) -> None:
        """Record a stage from explicit timestamps (for cross-thread waits)."""
        self.stages.append((name, t0, max(0.0, dur), dict(counters)))

    def add(self, **counters: int) -> None:
        """Attach integer counters (flops estimate, status, ...) to the root."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    def to_spans(self) -> list[Span]:
        """The trace as a standard obs span tree: one root, one child per stage."""
        root = Span(f"request[{self.route}]", "serve", self.counters)
        end = 0.0
        for name, t0, dur, counters in sorted(self.stages, key=lambda s: s[1]):
            child = Span(f"request.{name}", "serve", counters)
            child.t0, child.dur = t0, dur
            root.children.append(child)
            end = max(end, t0 + dur)
        root.dur = max(end, self.elapsed() if not self.stages else end)
        return [root]

    def write(self, path: str, meta: dict | None = None) -> dict:
        """Export as a Chrome trace file (Perfetto-loadable), return payload."""
        from repro.obs.export import write_trace

        recorder = TraceRecorder()
        recorder.roots = self.to_spans()
        merged = {"route": self.route, "tenant": self.tenant, **(meta or {})}
        return write_trace(path, recorder, meta=merged)


class _NullRequestTrace:
    """No-op trace: lets instrumented code skip ``if trace`` conditionals."""

    __slots__ = ()

    @contextmanager
    def stage(self, name: str, **counters: int):
        yield self

    def record(self, name: str, t0: float, dur: float, **counters: int) -> None:
        return None

    def add(self, **counters: int) -> None:
        return None

    def elapsed(self) -> float:
        return 0.0


#: Singleton passed through the runtime when no per-request tracing is on.
NULL_REQUEST_TRACE = _NullRequestTrace()
