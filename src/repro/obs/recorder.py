"""The span recorder: hierarchical wall-clock tracing with integer counters.

A :class:`Span` is one timed region of the pipeline (dataset load, a
reorganizer pass, a simulated kernel phase, ...) carrying a name, a coarse
category, a dict of **integer** counters (op counts, cache hits) and child
spans.  A :class:`TraceRecorder` owns a tree of spans and the entry stack
that nests them; the module-level :func:`span` helper is what instrumented
code calls.

Disabled-path contract: when no recorder is installed, :func:`span` returns
the singleton :data:`NULL_SPAN` — no :class:`Span` object is allocated, no
clock is read, and entering/exiting the null span is a constant-time no-op.
Instrumentation is therefore safe to leave in hot paths unconditionally
(tests/test_obs.py asserts the no-allocation guarantee).

Counters are restricted to integers on purpose: the aggregated span tree
(:mod:`repro.obs.aggregate`) must be byte-identical between serial and
process-pool runs, so everything in it has to be deterministic — wall-clock
lives only on the raw spans and in the Chrome trace events.

Worker processes record into their own recorder and ship their span trees
back as plain dicts (:meth:`TraceRecorder.to_dicts`); the parent splices
them into its live tree with :meth:`TraceRecorder.adopt`, tagging each
adopted subtree with the worker's process lane for the Chrome export.

The recorder is deliberately single-threaded per process: the bench
parallelises across *processes*, each with its own recorder.
"""

from __future__ import annotations

import time

__all__ = [
    "Span",
    "TraceRecorder",
    "NULL_SPAN",
    "active",
    "adopt",
    "install",
    "is_enabled",
    "span",
    "uninstall",
]


class Span:
    """One timed pipeline region: name, category, integer counters, children.

    Spans are context managers; entering pushes onto the owning recorder's
    stack (so nested ``with obs.span(...)`` calls build the tree) and stamps
    the start time, exiting stamps the duration.
    """

    __slots__ = ("name", "category", "counters", "children", "t0", "dur", "pid", "_recorder")

    def __init__(
        self,
        name: str,
        category: str = "pipeline",
        counters: dict[str, int] | None = None,
        pid: int = 0,
    ) -> None:
        self.name = name
        self.category = category
        self.counters: dict[str, int] = dict(counters) if counters else {}
        self.children: list[Span] = []
        self.t0 = 0.0  # seconds since the recorder's origin
        self.dur = 0.0  # wall-clock seconds inside the span
        self.pid = pid  # process lane for the Chrome export (0 = this process)
        self._recorder: TraceRecorder | None = None

    def add(self, **counters: int) -> None:
        """Accumulate integer counters onto this span."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    def __enter__(self) -> "Span":
        self._recorder._push(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._recorder._pop(self)
        return False

    # -- worker serialisation ------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, pickle/JSON-stable across processes."""
        return {
            "name": self.name,
            "category": self.category,
            "counters": self.counters,
            "t0": self.t0,
            "dur": self.dur,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict, pid: int = 0) -> "Span":
        """Rebuild a span tree shipped back from a worker process."""
        span = cls(payload["name"], payload["category"], payload.get("counters"), pid=pid)
        span.t0 = float(payload.get("t0", 0.0))
        span.dur = float(payload.get("dur", 0.0))
        span.children = [cls.from_dict(child, pid=pid) for child in payload.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, cat={self.category!r}, children={len(self.children)})"


class _NullSpan:
    """The disabled-recorder span: a stateless, allocation-free no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **counters: int) -> None:
        return None


#: Singleton returned by :func:`span` while tracing is off.
NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Owns a span tree and the stack that nests live spans into it."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._origin = time.perf_counter()

    def span(self, name: str, category: str = "pipeline", **counters: int) -> Span:
        """Create a span bound to this recorder (enter it to record)."""
        span = Span(name, category, counters)
        span._recorder = self
        return span

    def _push(self, span: Span) -> None:
        parent = self._stack[-1].children if self._stack else self.roots
        parent.append(span)
        self._stack.append(span)
        span.t0 = time.perf_counter() - self._origin

    def _pop(self, span: Span) -> None:
        span.dur = time.perf_counter() - self._origin - span.t0
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def adopt(self, payloads: list[dict], pid: int = 0) -> None:
        """Splice worker span trees (``to_dicts`` output) under the open span.

        Adopted spans land exactly where a serial execution would have
        recorded them, so serial and parallel runs aggregate identically;
        ``pid`` tags the subtree's process lane for the Chrome export.
        """
        target = self._stack[-1].children if self._stack else self.roots
        for payload in payloads:
            target.append(Span.from_dict(payload, pid=pid))

    def to_dicts(self) -> list[dict]:
        """The root span trees as plain dicts (worker -> parent shipping)."""
        return [span.to_dict() for span in self.roots]


_ACTIVE: TraceRecorder | None = None


def active() -> TraceRecorder | None:
    """The installed recorder, or None while tracing is off."""
    return _ACTIVE


def is_enabled() -> bool:
    """True when a recorder is installed in this process."""
    return _ACTIVE is not None


def install(recorder: TraceRecorder | None = None) -> TraceRecorder:
    """Install (and return) the process-wide recorder; tracing is on after."""
    global _ACTIVE
    _ACTIVE = recorder if recorder is not None else TraceRecorder()
    return _ACTIVE


def uninstall() -> TraceRecorder | None:
    """Remove and return the installed recorder; tracing is off after."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    return recorder


def span(name: str, category: str = "pipeline", **counters: int):
    """A span under the installed recorder, or :data:`NULL_SPAN` when off."""
    recorder = _ACTIVE
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, category, **counters)


def adopt(payloads: list[dict] | None, pid: int = 0) -> None:
    """Adopt worker span dicts into the installed recorder (no-op when off)."""
    if payloads and _ACTIVE is not None:
        _ACTIVE.adopt(payloads, pid=pid)
