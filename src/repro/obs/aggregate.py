"""Deterministic aggregation of span trees.

The raw span tree carries wall-clock times, which differ run to run and
between serial and process-pool execution.  The *aggregated* tree is the
deterministic projection the acceptance checks compare byte for byte: sibling
spans are merged by ``(name, category)``, occurrence counts and integer
counters are summed, children are aggregated recursively, and every level is
sorted — so the result is a pure function of what work ran, not of when or
where it ran.  Wall-clock is deliberately excluded; it lives in the Chrome
events (:mod:`repro.obs.export`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Sequence

from repro.obs.recorder import Span

__all__ = ["aggregate_spans", "aggregate_digest", "walk_aggregate"]


def aggregate_spans(spans: Sequence[Span]) -> list[dict]:
    """Merge sibling spans by ``(name, category)`` into a sorted tree.

    Returns a list of plain-dict nodes ``{name, category, count, counters,
    children}`` with counters and children each sorted by key, so two span
    trees describing the same work serialise identically regardless of
    execution order or process placement.
    """
    groups: dict[tuple[str, str], dict] = {}
    pending_children: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        key = (span.name, span.category)
        node = groups.get(key)
        if node is None:
            node = groups[key] = {"count": 0, "counters": {}}
            pending_children[key] = []
        node["count"] += 1
        for name, value in span.counters.items():
            node["counters"][name] = node["counters"].get(name, 0) + int(value)
        pending_children[key].extend(span.children)
    return [
        {
            "name": name,
            "category": category,
            "count": groups[(name, category)]["count"],
            "counters": dict(sorted(groups[(name, category)]["counters"].items())),
            "children": aggregate_spans(pending_children[(name, category)]),
        }
        for name, category in sorted(groups)
    ]


def aggregate_digest(tree: list[dict]) -> str:
    """Stable 16-hex digest of an aggregated tree (equivalence checks)."""
    blob = json.dumps(tree, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def walk_aggregate(tree: list[dict], depth: int = 0):
    """Yield ``(depth, node)`` over an aggregated tree in display order."""
    for node in tree:
        yield depth, node
        yield from walk_aggregate(node["children"], depth + 1)
