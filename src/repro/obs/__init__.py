"""repro.obs — the observability plane: structured tracing for the pipeline.

Every stage of a reproduction run — dataset load, :class:`MultiplyContext`
build, plan lowering, the four reorganizer passes, numeric expansion and
merge, and the simulator itself — records a hierarchical span with wall-clock
and deterministic integer counters (op counts, block counts, plan/bench cache
hits).  The paper's whole methodology is profiler-driven; this package is the
equivalent loop for the simulator and numeric planes.

Usage (instrumented code)::

    from repro import obs

    with obs.span("plan.lower[row-product]", "plan") as sp:
        plan = self.lower(ctx, config)
        sp.add(phases=len(plan.phases))

When no recorder is installed, :func:`span` returns an allocation-free no-op
singleton, so instrumentation costs effectively nothing in production paths.

Usage (drivers)::

    recorder = obs.install()
    try:
        ...            # run the pipeline
    finally:
        obs.uninstall()
    export.write_trace("out.json", recorder)   # Perfetto-loadable

The bench's worker processes each install their own recorder and ship span
trees back with their results; :func:`adopt` splices them into the parent
trace so the aggregated tree (:func:`~repro.obs.aggregate.aggregate_spans`)
is byte-identical between serial and parallel runs of the same work.
"""

from repro.obs.aggregate import aggregate_digest, aggregate_spans, walk_aggregate
from repro.obs.export import chrome_payload, format_span_tree, trace_events, write_trace
from repro.obs.recorder import (
    NULL_SPAN,
    Span,
    TraceRecorder,
    active,
    adopt,
    install,
    is_enabled,
    span,
    uninstall,
)
from repro.obs.serving import (
    NULL_REQUEST_TRACE,
    RequestTrace,
    ServingMetrics,
    StreamingHistogram,
)

__all__ = [
    "NULL_REQUEST_TRACE",
    "NULL_SPAN",
    "RequestTrace",
    "ServingMetrics",
    "Span",
    "StreamingHistogram",
    "TraceRecorder",
    "active",
    "adopt",
    "aggregate_digest",
    "aggregate_spans",
    "chrome_payload",
    "format_span_tree",
    "install",
    "is_enabled",
    "span",
    "trace_events",
    "uninstall",
    "walk_aggregate",
    "write_trace",
]
