"""Wire protocol for ``repro serve``: JSON codecs and request validation.

Matrices travel as plain-JSON CSR quadruples::

    {"shape": [rows, cols], "indptr": [...], "indices": [...], "data": [...]}

JSON round-trips IEEE-754 doubles exactly (Python serialises the shortest
string that parses back to the same double), so a matrix decoded from a
response is *bit-identical* to the server-side result — the property the
serve bench asserts against the batch CLI path.

All validation failures raise :class:`BadRequest`, which the server maps to
HTTP 400 with the message in the body; nothing in this module touches the
network.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = [
    "BadRequest",
    "csr_from_wire",
    "csr_to_wire",
    "json_body",
    "require",
    "scalar",
]


class BadRequest(Exception):
    """A malformed or invalid request body (HTTP 400)."""


def json_body(raw: bytes) -> dict:
    """Decode a request body as a JSON object."""
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"body is not valid JSON: {exc}") from None
    if not isinstance(body, dict):
        raise BadRequest("body must be a JSON object")
    return body


def csr_to_wire(m: CSRMatrix) -> dict:
    """Encode a matrix for the wire."""
    return {
        "shape": [int(m.shape[0]), int(m.shape[1])],
        "indptr": m.indptr.tolist(),
        "indices": m.indices.tolist(),
        "data": m.data.tolist(),
    }


def csr_from_wire(obj: Any, field: str = "matrix") -> CSRMatrix:
    """Decode and validate a wire-format matrix.

    Structural invariants (monotone ``indptr``, index bounds, array
    lengths) are enforced by the :class:`CSRMatrix` constructor; this
    wrapper translates both shape errors and constructor rejections into
    :class:`BadRequest` so the server answers 400, not 500.
    """
    if not isinstance(obj, dict):
        raise BadRequest(f"{field!r} must be a JSON object with shape/indptr/indices/data")
    for key in ("shape", "indptr", "indices", "data"):
        if key not in obj:
            raise BadRequest(f"{field!r} is missing {key!r}")
    shape = obj["shape"]
    if (
        not isinstance(shape, (list, tuple))
        or len(shape) != 2
        or not all(isinstance(s, int) and s >= 0 for s in shape)
    ):
        raise BadRequest(f"{field}.shape must be [rows, cols] of non-negative ints")
    try:
        indptr = np.asarray(obj["indptr"], dtype=np.int64)
        indices = np.asarray(obj["indices"], dtype=np.int64)
        data = np.asarray(obj["data"], dtype=np.float64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise BadRequest(f"{field!r} arrays are not numeric: {exc}") from None
    if indptr.ndim != 1 or indices.ndim != 1 or data.ndim != 1:
        raise BadRequest(f"{field!r} arrays must be one-dimensional")
    rows, cols = int(shape[0]), int(shape[1])
    # The CSRMatrix constructor trusts its inputs (internal fast path), so
    # the trust boundary is here: reject inconsistent structure with a 400
    # instead of letting it corrupt a multiply downstream.
    if (
        len(indptr) != rows + 1
        or (len(indptr) > 0 and indptr[0] != 0)
        or (len(indptr) > 0 and np.any(np.diff(indptr) < 0))
        or (len(indptr) > 0 and indptr[-1] != len(indices))
        or len(indices) != len(data)
        or (len(indices) > 0 and (indices.min() < 0 or indices.max() >= cols))
    ):
        raise BadRequest(f"{field!r} is not a valid CSR matrix")
    try:
        return CSRMatrix((rows, cols), indptr, indices, data)
    except Exception as exc:
        raise BadRequest(f"{field!r} is not a valid CSR matrix: {exc}") from None


def require(body: dict, key: str) -> Any:
    """Fetch a required request field."""
    if key not in body:
        raise BadRequest(f"missing required field {key!r}")
    return body[key]


def scalar(body: dict, key: str, kind: type, default: Any) -> Any:
    """Fetch an optional numeric field, type-checked (bool is not a number)."""
    if key not in body or body[key] is None:
        return default
    value = body[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{key!r} must be a number")
    try:
        return kind(value)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise BadRequest(f"{key!r}: {exc}") from None
