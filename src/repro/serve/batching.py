"""Micro-batching and admission control for the serve front-end.

Requests are keyed by ``(tenant, route, algorithm, structure fingerprint)``.
Requests sharing a key within one batch window are dispatched as a single
executor task that runs them back-to-back on the same warm session: the
first pays any symbolic lowering, the rest replay numerically — one
symbolic pass amortised across callers, which is the entire point of
serving this workload from a long-lived process.

Admission control is two bounds and a timer: at most ``max_inflight``
requests execute concurrently (the executor's width), at most ``max_queue``
more may wait behind them (beyond that, :class:`Overloaded` → HTTP 503),
and each caller waits at most ``request_timeout`` seconds for its result
(HTTP 504; the batch keeps running — results land in the warm cache).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

__all__ = ["AdmissionConfig", "BatchStats", "MicroBatcher", "Overloaded"]


class Overloaded(Exception):
    """The server is at max in-flight + queue depth (HTTP 503)."""


@dataclass(frozen=True)
class AdmissionConfig:
    """Concurrency, queueing and batching bounds for one server."""

    max_inflight: int = 4
    max_queue: int = 64
    batch_window: float = 0.002
    max_batch: int = 16
    request_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )


@dataclass
class BatchStats:
    """Counters the ``/stats`` route exposes for the batching layer."""

    admitted: int = 0
    rejected: int = 0
    timeouts: int = 0
    batches: int = 0
    batched_requests: int = 0
    largest_batch: int = 0

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "largest_batch": self.largest_batch,
        }


@dataclass
class _Batch:
    items: list = field(default_factory=list)
    timer: object = None
    dispatched: bool = False


class MicroBatcher:
    """Groups same-key requests into executor tasks; enforces admission.

    Must be used from a single event loop; the work callables run on the
    owned :class:`ThreadPoolExecutor` (width = ``max_inflight``) and their
    results are posted back to the loop thread-safely.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.stats = BatchStats()
        self._open: dict[tuple, _Batch] = {}
        self._inflight = 0
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_inflight, thread_name_prefix="repro-serve"
        )

    async def submit(self, key: tuple, work) -> object:
        """Admit ``work`` under ``key``, await (with timeout) its result.

        Raises :class:`Overloaded` when full and :class:`TimeoutError`
        after ``request_timeout`` seconds.
        """
        loop = asyncio.get_running_loop()
        if self._inflight >= self.config.max_inflight + self.config.max_queue:
            self.stats.rejected += 1
            raise Overloaded(
                f"at capacity ({self._inflight} in flight, "
                f"max {self.config.max_inflight} + queue {self.config.max_queue})"
            )
        self._inflight += 1
        self.stats.admitted += 1
        future: asyncio.Future = loop.create_future()
        future.add_done_callback(self._release)
        self._enqueue(loop, key, work, future)
        try:
            return await asyncio.wait_for(future, self.config.request_timeout)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise TimeoutError(
                f"request exceeded {self.config.request_timeout}s"
            ) from None

    def _release(self, future) -> None:
        self._inflight -= 1

    def _enqueue(self, loop, key: tuple, work, future) -> None:
        batch = self._open.get(key)
        if batch is None or batch.dispatched:
            batch = _Batch()
            self._open[key] = batch
            batch.timer = loop.call_later(
                self.config.batch_window, self._dispatch, loop, key, batch
            )
        batch.items.append((work, future))
        if len(batch.items) >= self.config.max_batch:
            self._dispatch(loop, key, batch)

    def _dispatch(self, loop, key: tuple, batch: _Batch) -> None:
        if batch.dispatched:
            return
        batch.dispatched = True
        if batch.timer is not None:
            batch.timer.cancel()
        if self._open.get(key) is batch:
            del self._open[key]
        self.stats.batches += 1
        self.stats.batched_requests += len(batch.items)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch.items))
        self._executor.submit(self._run_batch, loop, list(batch.items))

    @staticmethod
    def _run_batch(loop, items) -> None:
        """Executor side: run a batch back-to-back, post results to the loop."""
        for work, future in items:
            try:
                result = work()
            except BaseException as exc:  # delivered to the awaiting handler
                loop.call_soon_threadsafe(_resolve, future, None, exc)
            else:
                loop.call_soon_threadsafe(_resolve, future, result, None)

    def close(self) -> None:
        """Stop accepting work and drain the executor."""
        for batch in self._open.values():
            if batch.timer is not None:
                batch.timer.cancel()
        self._open.clear()
        self._executor.shutdown(wait=True)


def _resolve(future, result, exc) -> None:
    """Complete a future unless its awaiter already timed out."""
    if future.done():
        return
    if exc is not None:
        future.set_exception(exc)
    else:
        future.set_result(result)
