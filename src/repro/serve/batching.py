"""Micro-batching and admission control for the serve front-end.

Requests are keyed by ``(tenant, route, algorithm, structure fingerprint)``.
Requests sharing a key within one batch window are dispatched as a single
executor task that runs them back-to-back on the same warm session: the
first pays any symbolic lowering, the rest replay numerically — one
symbolic pass amortised across callers, which is the entire point of
serving this workload from a long-lived process.

Admission control is **cost-aware**: each request arrives with an estimated
flop cost (:func:`repro.plan.estimate.multiply_flops`, computed by the
server at the trust boundary), and the batcher keeps a ledger of admitted,
unfinished flops.  A request is shed (:class:`Overloaded` → HTTP 503) when
either bound trips:

* **queue** — more than ``max_inflight + max_queue`` requests are already
  admitted (the pre-existing depth bound; the backstop when cost admission
  is off or estimates are zero);
* **cost** — ``max_inflight_flops > 0`` and admitting the request's cost
  would push the ledger past the budget.  An oversized request (cost >
  budget) is shed even on an idle server — it could never be admitted, so
  failing fast beats queueing it forever.

Shed responses carry a ``retry_after`` hint derived from the *observed
drain rate*: completed work per second since the server started (flops for
cost sheds, requests for queue sheds).  ``excess / rate``, clamped to
``[1, 60]`` seconds — under sustained overload nothing drains, the rate
estimate decays, and the hint grows monotonically, which is exactly the
back-off a well-behaved client should apply.

The flop ledger decrements when the *work completes*, not when the caller
gives up: a client timeout (HTTP 504) does not un-spend the compute still
running on the executor.

Each caller waits at most ``request_timeout`` seconds for its result
(HTTP 504; the batch keeps running — results land in the warm cache).
"""

from __future__ import annotations

import asyncio
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

__all__ = [
    "RETRY_AFTER_MAX",
    "AdmissionConfig",
    "BatchStats",
    "MicroBatcher",
    "Overloaded",
]

#: Ceiling (seconds) on the Retry-After hint; also the value used when no
#: work has drained yet (no rate to extrapolate from).
RETRY_AFTER_MAX = 60


class Overloaded(Exception):
    """The request was shed by admission control (HTTP 503).

    Attributes:
        reason: ``"queue"`` (depth bound) or ``"cost"`` (flop budget).
        retry_after: suggested client back-off in whole seconds, derived
            from the observed drain rate and clamped to
            ``[1, RETRY_AFTER_MAX]``.
    """

    def __init__(self, message: str, *, reason: str = "queue", retry_after: int = 1):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class AdmissionConfig:
    """Concurrency, queueing, batching and cost bounds for one server."""

    max_inflight: int = 4
    max_queue: int = 64
    batch_window: float = 0.002
    max_batch: int = 16
    request_timeout: float = 60.0
    max_inflight_flops: int = 0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.max_inflight_flops < 0:
            raise ValueError(
                f"max_inflight_flops must be >= 0 (0 disables cost admission), "
                f"got {self.max_inflight_flops}"
            )


@dataclass
class BatchStats:
    """Counters the ``/stats`` route exposes for the batching layer.

    ``rejected`` remains the total shed count (pre-existing key);
    ``shed_queue`` + ``shed_cost`` break it down by reason.  ``completed``
    and ``drained_flops`` count *finished executor work* — the denominators
    of the drain rates behind ``retry_after_last``, the hint sent with the
    most recent 503.
    """

    admitted: int = 0
    rejected: int = 0
    shed_queue: int = 0
    shed_cost: int = 0
    timeouts: int = 0
    batches: int = 0
    batched_requests: int = 0
    largest_batch: int = 0
    completed: int = 0
    drained_flops: int = 0
    retry_after_last: int = 0

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed_queue": self.shed_queue,
            "shed_cost": self.shed_cost,
            "timeouts": self.timeouts,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "largest_batch": self.largest_batch,
            "completed": self.completed,
            "drained_flops": self.drained_flops,
            "retry_after_last": self.retry_after_last,
        }


@dataclass
class _Batch:
    items: list = field(default_factory=list)
    timer: object = None
    dispatched: bool = False


class MicroBatcher:
    """Groups same-key requests into executor tasks; enforces admission.

    Must be used from a single event loop; the work callables run on the
    owned :class:`ThreadPoolExecutor` (width = ``max_inflight``) and their
    results are posted back to the loop thread-safely.  All admission state
    (inflight count, flop ledger, stats) mutates on the loop thread only.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.stats = BatchStats()
        self._open: dict[tuple, _Batch] = {}
        self._inflight = 0
        self._inflight_flops = 0
        self._started = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_inflight, thread_name_prefix="repro-serve"
        )

    @property
    def inflight_flops(self) -> int:
        """Estimated flops of admitted work that has not finished executing."""
        return self._inflight_flops

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting behind the ``max_inflight`` executors."""
        return max(0, self._inflight - self.config.max_inflight)

    def _retry_after(self, excess: float, rate: float) -> int:
        """Seconds until ``excess`` units drain at ``rate`` units/second."""
        if rate <= 0.0:
            return RETRY_AFTER_MAX
        return int(min(RETRY_AFTER_MAX, max(1, math.ceil(excess / rate))))

    def _shed(self, reason: str, excess: float, rate: float, message: str):
        retry_after = self._retry_after(excess, rate)
        self.stats.rejected += 1
        if reason == "cost":
            self.stats.shed_cost += 1
        else:
            self.stats.shed_queue += 1
        self.stats.retry_after_last = retry_after
        raise Overloaded(message, reason=reason, retry_after=retry_after)

    def admit(self, cost: int = 0) -> None:
        """Check both admission bounds for a request of estimated ``cost``.

        Raises :class:`Overloaded` (with reason and retry hint) without
        mutating the ledger; on success the caller proceeds to
        :meth:`submit`, which spends the admission.
        """
        elapsed = max(1e-9, time.monotonic() - self._started)
        capacity = self.config.max_inflight + self.config.max_queue
        if self._inflight >= capacity:
            self._shed(
                "queue",
                excess=self._inflight - capacity + 1,
                rate=self.stats.completed / elapsed,
                message=(
                    f"at capacity ({self._inflight} in flight, "
                    f"max {self.config.max_inflight} + queue {self.config.max_queue})"
                ),
            )
        budget = self.config.max_inflight_flops
        if budget > 0 and cost > 0 and self._inflight_flops + cost > budget:
            self._shed(
                "cost",
                excess=self._inflight_flops + cost - budget,
                rate=self.stats.drained_flops / elapsed,
                message=(
                    f"flop budget exceeded (estimated cost {cost}, "
                    f"{self._inflight_flops} in flight, budget {budget})"
                ),
            )

    async def submit(self, key: tuple, work, cost: int = 0) -> object:
        """Admit ``work`` under ``key``, await (with timeout) its result.

        ``cost`` is the request's estimated flop count; it is charged to
        the inflight ledger on admission and drained when the executor
        finishes the work (a caller timeout does not refund it).  Raises
        :class:`Overloaded` when shed and :class:`TimeoutError` after
        ``request_timeout`` seconds.
        """
        loop = asyncio.get_running_loop()
        self.admit(cost)
        self._inflight += 1
        self._inflight_flops += cost
        self.stats.admitted += 1
        future: asyncio.Future = loop.create_future()
        future.add_done_callback(self._release)
        self._enqueue(loop, key, work, future, cost)
        try:
            return await asyncio.wait_for(future, self.config.request_timeout)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise TimeoutError(
                f"request exceeded {self.config.request_timeout}s"
            ) from None

    def _release(self, future) -> None:
        self._inflight -= 1

    def _drain(self, cost: int) -> None:
        """Loop-thread ledger update for one *finished* piece of work."""
        self._inflight_flops -= cost
        self.stats.completed += 1
        self.stats.drained_flops += cost

    def _enqueue(self, loop, key: tuple, work, future, cost: int) -> None:
        batch = self._open.get(key)
        if batch is None or batch.dispatched:
            batch = _Batch()
            self._open[key] = batch
            batch.timer = loop.call_later(
                self.config.batch_window, self._dispatch, loop, key, batch
            )
        batch.items.append((work, future, cost))
        if len(batch.items) >= self.config.max_batch:
            self._dispatch(loop, key, batch)

    def _dispatch(self, loop, key: tuple, batch: _Batch) -> None:
        if batch.dispatched:
            return
        batch.dispatched = True
        if batch.timer is not None:
            batch.timer.cancel()
        if self._open.get(key) is batch:
            del self._open[key]
        self.stats.batches += 1
        self.stats.batched_requests += len(batch.items)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch.items))
        self._executor.submit(self._run_batch, loop, list(batch.items))

    def _run_batch(self, loop, items) -> None:
        """Executor side: run a batch back-to-back, post results to the loop."""
        for work, future, cost in items:
            try:
                result = work()
            except BaseException as exc:  # delivered to the awaiting handler
                loop.call_soon_threadsafe(_resolve, future, None, exc)
            else:
                loop.call_soon_threadsafe(_resolve, future, result, None)
            loop.call_soon_threadsafe(self._drain, cost)

    def close(self) -> None:
        """Stop accepting work and drain the executor."""
        for batch in self._open.values():
            if batch.timer is not None:
                batch.timer.cancel()
        self._open.clear()
        self._executor.shutdown(wait=True)


def _resolve(future, result, exc) -> None:
    """Complete a future unless its awaiter already timed out."""
    if future.done():
        return
    if exc is not None:
        future.set_exception(exc)
    else:
        future.set_result(result)
