"""``repro serve`` — multiply-as-a-service over a warm :class:`Runtime`.

A deliberately small asyncio HTTP/1.1 server (stdlib only: no frameworks)
exposing the numeric plane to concurrent callers:

===========================  ========================================================
route                        body
===========================  ========================================================
``GET /healthz``             — liveness probe
``GET /stats``               — runtime + batching + per-route serving counters
``GET /metrics``             — the same counters in Prometheus text format
``POST /v1/multiply``        ``{"algorithm", "a", "b"?}``
``POST /v1/pagerank``        ``{"algorithm", "adjacency", "damping"?, "tol"?, "max_iter"?}``
``POST /v1/reachability``    ``{"algorithm", "adjacency", "k"}``
``POST /v1/similarity``      ``{"algorithm", "adjacency", "metric"?}``
===========================  ========================================================

Matrices use the wire format of :mod:`repro.serve.protocol`; the optional
``X-Tenant`` header scopes requests to a tenant's session pool (and hence
its plan-cache quota).

Request lifecycle (each stage is a span on the request's
:class:`~repro.obs.serving.RequestTrace`)::

    accept → parse → validate → admission → batch_wait → session → numeric
           → serialize

``parse`` decodes the JSON body; ``validate`` rebuilds and checks the CSR
operands at the trust boundary; ``admission`` estimates the request's flop
cost (:func:`repro.plan.estimate.multiply_flops`) and checks it against the
``--max-inflight-flops`` budget; ``batch_wait`` is the queue time until a
micro-batch picks the request up (:mod:`repro.serve.batching` coalesces
same-structure requests); ``session``/``numeric`` are recorded inside the
runtime (pool lookup + lock wait, then the multiply itself — executed
through the shared :class:`~repro.exec.ExecEngine` when the runtime has
one); ``serialize`` re-encodes the result.  Responses are bit-identical to
the batch CLI path because both route through the same
:class:`~repro.runtime.Runtime`.

Every completed request lands in per-route and per-tenant streaming
histograms (:class:`~repro.obs.serving.ServingMetrics`) surfaced by
``/stats`` and ``/metrics``; with ``--trace-dir`` set, requests slower than
``--trace-slow-ms`` export their span tree as a Chrome trace file.

Errors: 400 malformed/unknown inputs, 404/405 bad route, 503 shed by
admission (with a ``Retry-After`` header derived from the observed drain
rate), 504 per-request timeout, 500 anything else — always
``{"error": "..."}``.  Shed requests count in the ``sheds`` column only;
``requests``/``errors``/latency cover requests that reached a handler and
produced a result.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.metrics.promtext import render_metrics
from repro.obs.serving import RequestTrace, ServingMetrics
from repro.plan.cache import structure_fingerprint
from repro.plan.estimate import multiply_flops
from repro.runtime import Runtime, lifecycle
from repro.serve.batching import AdmissionConfig, BatchStats, MicroBatcher, Overloaded
from repro.serve.protocol import (
    BadRequest,
    csr_from_wire,
    csr_to_wire,
    json_body,
    require,
    scalar,
)

__all__ = ["ServeConfig", "Server", "ServerThread", "run", "stats_field_names"]

#: readuntil() bound for the header block; bodies are read by length.
_MAX_HEADER_BYTES = 1 << 20

#: Most trace files one server writes into ``--trace-dir`` (slow requests
#: under sustained overload must not fill the disk).
TRACE_FILE_CAP = 128


@dataclass(frozen=True)
class ServeConfig:
    """Where to listen, admission/batching bounds, and trace sampling.

    ``trace_dir=None`` disables per-request trace export; otherwise any
    request slower than ``trace_slow_ms`` milliseconds writes its span tree
    to ``trace_dir`` (at most :data:`TRACE_FILE_CAP` files; set
    ``trace_slow_ms=0`` to sample every request).
    """

    host: str = "127.0.0.1"
    port: int = 8077
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    trace_dir: str | None = None
    trace_slow_ms: float = 250.0


class Server:
    """One listening socket over one runtime.  Single event loop; the
    numeric work runs on the batcher's thread pool."""

    def __init__(self, runtime: Runtime, config: ServeConfig | None = None) -> None:
        self.runtime = runtime
        self.config = config if config is not None else ServeConfig()
        self.batcher = MicroBatcher(self.config.admission)
        self.metrics = ServingMetrics()
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_MAX_HEADER_BYTES,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Stop accepting, drain the executor, close the runtime."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.get_running_loop().run_in_executor(None, self.batcher.close)
        lifecycle.uninstall(self.runtime)

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ):
                    break
                try:
                    method, path, headers = _parse_head(head)
                    length = int(headers.get("content-length", "0") or "0")
                    body = await reader.readexactly(length) if length > 0 else b""
                except (ValueError, asyncio.IncompleteReadError):
                    await _respond(writer, 400, {"error": "malformed HTTP request"})
                    break
                status, payload, extra = await self._route(method, path, headers, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await _respond(
                    writer, status, payload, keep_alive=keep_alive, extra_headers=extra
                )
                if not keep_alive:
                    break
        except ConnectionResetError:  # pragma: no cover - client vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(self, method: str, path: str, headers: dict, body: bytes):
        if path == "/healthz":
            return 200, {"ok": True}, {}
        if path == "/stats":
            return 200, self._stats_payload(), {}
        if path == "/metrics":
            text = render_metrics(self._stats_payload(include_buckets=True))
            return 200, text, {}
        handlers = {
            "/v1/multiply": ("multiply", self._multiply),
            "/v1/pagerank": ("pagerank", self._pagerank),
            "/v1/reachability": ("reachability", self._reachability),
            "/v1/similarity": ("similarity", self._similarity),
        }
        entry = handlers.get(path)
        if entry is None:
            return 404, {"error": f"no such route: {path}"}, {}
        route, handler = entry
        if method != "POST":
            return 405, {"error": f"{path} requires POST"}, {}
        tenant = headers.get("x-tenant", "default") or "default"
        trace = RequestTrace(route, tenant)
        extra: dict[str, str] = {}
        shed = False
        try:
            with trace.stage("parse", body_bytes=len(body)):
                parsed = json_body(body)
            status, payload = 200, await handler(parsed, tenant, trace)
        except (BadRequest, ReproError) as exc:
            status, payload = 400, {"error": str(exc)}
        except Overloaded as exc:
            shed = True
            status = 503
            payload = {
                "error": str(exc),
                "reason": exc.reason,
                "retry_after": exc.retry_after,
            }
            extra["Retry-After"] = str(exc.retry_after)
        except TimeoutError as exc:
            status, payload = 504, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - last-resort guard
            status, payload = 500, {"error": f"internal error: {exc}"}
        trace.add(status=status)
        if shed:
            self.metrics.shed(route, tenant)
        else:
            self.metrics.observe(route, tenant, trace.elapsed(), status)
        self._maybe_export_trace(trace, status)
        return status, payload, extra

    # -- request handlers ----------------------------------------------
    def _estimate_cost(self, a, b, trace) -> int:
        """Flop cost of ``a @ b`` for admission, at the trust boundary.

        An estimate too large for budget arithmetic (:class:`OverflowError`)
        falls back to the *whole* budget: the request is admitted only on an
        otherwise-idle ledger and serialises against everything else —
        conservative, counted in ``estimate_fallbacks``.
        """
        budget = self.config.admission.max_inflight_flops
        try:
            cost = multiply_flops(a, b)
        except OverflowError:
            self.metrics.estimate_fallbacks += 1
            cost = budget
        trace.add(estimated_flops=cost)
        return cost

    async def _submit(self, key: tuple, work_fn, cost: int, trace):
        """Admit + enqueue; record queue time as the ``batch_wait`` stage."""
        queued_at = trace.elapsed()

        def work():
            trace.record("batch_wait", queued_at, trace.elapsed() - queued_at)
            return work_fn()

        with trace.stage("admission", estimated_flops=cost):
            self.batcher.admit(cost)
        return await self.batcher.submit(key, work, cost)

    async def _multiply(self, body: dict, tenant: str, trace) -> dict:
        with trace.stage("validate"):
            algorithm = str(require(body, "algorithm"))
            a = csr_from_wire(require(body, "a"), "a")
            b = csr_from_wire(body["b"], "b") if body.get("b") is not None else None
            fingerprint = structure_fingerprint(a, a if b is None else b)
        cost = self._estimate_cost(a, a if b is None else b, trace)
        key = (tenant, "multiply", algorithm, fingerprint)
        outcome = await self._submit(
            key,
            lambda: self.runtime.multiply(algorithm, a, b, tenant=tenant, trace=trace),
            cost,
            trace,
        )
        with trace.stage("serialize"):
            return {
                "result": csr_to_wire(outcome.result),
                "fingerprint": outcome.fingerprint,
                "replayed": outcome.replayed,
            }

    async def _pagerank(self, body: dict, tenant: str, trace) -> dict:
        with trace.stage("validate"):
            algorithm = str(require(body, "algorithm"))
            adjacency = csr_from_wire(require(body, "adjacency"), "adjacency")
            damping = scalar(body, "damping", float, 0.85)
            tol = scalar(body, "tol", float, 1e-10)
            max_iter = scalar(body, "max_iter", int, 200)
            fingerprint = structure_fingerprint(adjacency, adjacency)
        cost = self._estimate_cost(adjacency, adjacency, trace)
        key = (tenant, "pagerank", algorithm, fingerprint)
        result = await self._submit(
            key,
            lambda: self.runtime.pagerank(
                algorithm,
                adjacency,
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                tenant=tenant,
                trace=trace,
            ),
            cost,
            trace,
        )
        with trace.stage("serialize"):
            return {
                "scores": result.scores.tolist(),
                "iterations": result.iterations,
                "residual": result.residual,
                "converged": result.converged,
            }

    async def _reachability(self, body: dict, tenant: str, trace) -> dict:
        with trace.stage("validate"):
            algorithm = str(require(body, "algorithm"))
            adjacency = csr_from_wire(require(body, "adjacency"), "adjacency")
            k = scalar(body, "k", int, 2)
            fingerprint = structure_fingerprint(adjacency, adjacency)
        cost = self._estimate_cost(adjacency, adjacency, trace)
        key = (tenant, f"reach:{k}", algorithm, fingerprint)
        result = await self._submit(
            key,
            lambda: self.runtime.reachability(
                algorithm, adjacency, k, tenant=tenant, trace=trace
            ),
            cost,
            trace,
        )
        with trace.stage("serialize"):
            return {"result": csr_to_wire(result), "k": k}

    async def _similarity(self, body: dict, tenant: str, trace) -> dict:
        with trace.stage("validate"):
            algorithm = str(require(body, "algorithm"))
            adjacency = csr_from_wire(require(body, "adjacency"), "adjacency")
            metric = str(body.get("metric", "common"))
            fingerprint = structure_fingerprint(adjacency, adjacency)
        cost = self._estimate_cost(adjacency, adjacency, trace)
        key = (tenant, f"sim:{metric}", algorithm, fingerprint)
        result = await self._submit(
            key,
            lambda: self.runtime.similarity(
                algorithm, adjacency, metric, tenant=tenant, trace=trace
            ),
            cost,
            trace,
        )
        with trace.stage("serialize"):
            return {"result": csr_to_wire(result), "metric": metric}

    # -- trace export ----------------------------------------------------
    def _maybe_export_trace(self, trace: RequestTrace, status: int) -> None:
        """Write the request's span tree when it qualifies as slow.

        Sampling is by latency (``>= trace_slow_ms``), capped at
        :data:`TRACE_FILE_CAP` files per server lifetime; export failures
        are swallowed — tracing must never fail a request.
        """
        directory = self.config.trace_dir
        if directory is None:
            return
        if trace.elapsed() * 1e3 < self.config.trace_slow_ms:
            return
        if self.metrics.traces_written >= TRACE_FILE_CAP:
            return
        name = f"request-{self.metrics.traces_written:04d}-{trace.route}.trace.json"
        try:
            os.makedirs(directory, exist_ok=True)
            trace.write(os.path.join(directory, name), meta={"status": status})
        except OSError:  # pragma: no cover - disk trouble must not 500
            return
        self.metrics.traces_written += 1

    # -- stats ----------------------------------------------------------
    def _stats_payload(self, *, include_buckets: bool = False) -> dict:
        runtime_stats = self.runtime.stats()
        lowers = runtime_stats.plan_cache.lowers
        bstats = self.batcher.stats
        serving = self.metrics.snapshot(include_buckets=include_buckets)
        serving["queue_depth"] = self.batcher.queue_depth
        serving["inflight_flops"] = self.batcher.inflight_flops
        # How well the batch window coalesces: mean requests per dispatch.
        serving["coalescence_factor"] = (
            bstats.batched_requests / bstats.batches if bstats.batches else None
        )
        return {
            "runtime": runtime_stats.as_dict(),
            "batching": bstats.as_dict(),
            "serving": serving,
            # The serving thesis in one number: requests answered per
            # symbolic lowering paid (> 1 means amortisation is working).
            "requests_per_lowering": (
                runtime_stats.requests / lowers if lowers else None
            ),
        }


#: ``/stats`` sections whose dict keys are data (route/tenant/op names),
#: not schema — their *children* are walked, the names themselves are not
#: part of the documented field set.
_DYNAMIC_KEY_SECTIONS = {"routes", "tenants", "per_op"}


def stats_field_names() -> set[str]:
    """Every field name the ``/stats`` payload can contain.

    Built by walking a fully-populated sample payload (all optional
    sections present: one observed route/tenant, exec stats attached), so
    ``tools/check_docs.py`` can require each name in the OPERATIONS.md
    glossary and a test can assert the sample stays a superset of a live
    server's payload.  Keys under route/tenant/per-op maps are data, not
    schema, and are excluded (their value dicts are still walked).
    """
    from repro.exec.engine import ExecStats
    from repro.plan.cache import PlanCacheStats
    from repro.runtime.core import RuntimeStats

    metrics = ServingMetrics()
    metrics.observe("multiply", "default", 1e-3, 200)
    runtime_stats = RuntimeStats(
        sessions=0,
        sessions_evicted=0,
        tenants={},
        plan_cache=PlanCacheStats(),
        requests=0,
        exec=ExecStats().as_dict(),
    )
    serving = metrics.snapshot()
    serving.update(queue_depth=0, inflight_flops=0, coalescence_factor=None)
    sample = {
        "runtime": runtime_stats.as_dict(),
        "batching": BatchStats().as_dict(),
        "serving": serving,
        "requests_per_lowering": None,
    }

    names: set[str] = set()

    def walk(node: dict) -> None:
        for key, value in node.items():
            names.add(key)
            if not isinstance(value, dict):
                continue
            if key in _DYNAMIC_KEY_SECTIONS:
                for child in value.values():
                    if isinstance(child, dict):
                        walk(child)
            else:
                walk(value)

    walk(sample)
    return names


# -- HTTP plumbing ------------------------------------------------------
def _parse_head(head: bytes) -> tuple[str, str, dict]:
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"bad request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    path = target.split("?", 1)[0]
    return method.upper(), path, headers


async def _respond(
    writer,
    status: int,
    payload,
    *,
    keep_alive: bool = False,
    extra_headers: dict | None = None,
):
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }
    if isinstance(payload, str):  # /metrics exposition
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        content_type = "application/json"
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# -- entry points -------------------------------------------------------
async def _serve_until_signalled(runtime: Runtime, config: ServeConfig) -> None:
    server = Server(runtime, config)
    host, port = await server.start()
    # Parseable by tools/bench_serve.py even when port 0 picked a free one.
    print(f"serving on http://{host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        await server.stop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(sig)


def run(runtime: Runtime, config: ServeConfig | None = None) -> None:
    """Blocking server loop with graceful SIGINT/SIGTERM shutdown.

    The runtime is registered with :mod:`repro.runtime.lifecycle` (for
    atexit coverage) and closed — pools drained, shared memory unlinked —
    before this returns.
    """
    lifecycle.install(runtime)
    asyncio.run(_serve_until_signalled(runtime, config or ServeConfig()))


class ServerThread:
    """Run a :class:`Server` on a background thread (tests, benches).

    Usage::

        st = ServerThread(runtime, config)
        host, port = st.start()
        ...
        st.stop()          # also closes the runtime
    """

    def __init__(self, runtime: Runtime, config: ServeConfig | None = None) -> None:
        self.runtime = runtime
        self.config = config if config is not None else ServeConfig(port=0)
        self._address: tuple[str, int] | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-thread", daemon=True
        )

    def _main(self) -> None:
        try:
            asyncio.run(self._async_main())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._started.set()

    async def _async_main(self) -> None:
        server = Server(self.runtime, self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._address = await server.start()
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("server thread did not start")
        if self._error is not None:
            raise self._error
        assert self._address is not None
        return self._address

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._error is not None:
            raise self._error
