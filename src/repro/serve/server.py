"""``repro serve`` — multiply-as-a-service over a warm :class:`Runtime`.

A deliberately small asyncio HTTP/1.1 server (stdlib only: no frameworks)
exposing the numeric plane to concurrent callers:

===========================  ========================================================
route                        body
===========================  ========================================================
``GET /healthz``             — liveness probe
``GET /stats``               — runtime + batching counters, amortisation factor
``POST /v1/multiply``        ``{"algorithm", "a", "b"?}``
``POST /v1/pagerank``        ``{"algorithm", "adjacency", "damping"?, "tol"?, "max_iter"?}``
``POST /v1/reachability``    ``{"algorithm", "adjacency", "k"}``
``POST /v1/similarity``      ``{"algorithm", "adjacency", "metric"?}``
===========================  ========================================================

Matrices use the wire format of :mod:`repro.serve.protocol`; the optional
``X-Tenant`` header scopes requests to a tenant's session pool (and hence
its plan-cache quota).  Request lifecycle: accept → fingerprint the operand
structure → micro-batch same-structure requests (:mod:`repro.serve.batching`)
→ execute on the warm pooled session → numeric replay for every request
after the structure's first.  Responses are bit-identical to the batch CLI
path because both route through the same :class:`~repro.runtime.Runtime`.

Errors: 400 malformed/unknown inputs, 404/405 bad route, 503 over
admission capacity, 504 per-request timeout, 500 anything else — always
``{"error": "..."}``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.plan.cache import structure_fingerprint
from repro.runtime import Runtime, lifecycle
from repro.serve.batching import AdmissionConfig, MicroBatcher, Overloaded
from repro.serve.protocol import (
    BadRequest,
    csr_from_wire,
    csr_to_wire,
    json_body,
    require,
    scalar,
)

__all__ = ["ServeConfig", "Server", "ServerThread", "run"]

#: readuntil() bound for the header block; bodies are read by length.
_MAX_HEADER_BYTES = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Where to listen plus the admission/batching bounds."""

    host: str = "127.0.0.1"
    port: int = 8077
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)


class Server:
    """One listening socket over one runtime.  Single event loop; the
    numeric work runs on the batcher's thread pool."""

    def __init__(self, runtime: Runtime, config: ServeConfig | None = None) -> None:
        self.runtime = runtime
        self.config = config if config is not None else ServeConfig()
        self.batcher = MicroBatcher(self.config.admission)
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_MAX_HEADER_BYTES,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Stop accepting, drain the executor, close the runtime."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.get_running_loop().run_in_executor(None, self.batcher.close)
        lifecycle.uninstall(self.runtime)

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ):
                    break
                try:
                    method, path, headers = _parse_head(head)
                    length = int(headers.get("content-length", "0") or "0")
                    body = await reader.readexactly(length) if length > 0 else b""
                except (ValueError, asyncio.IncompleteReadError):
                    await _respond(writer, 400, {"error": "malformed HTTP request"})
                    break
                status, payload = await self._route(method, path, headers, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await _respond(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except ConnectionResetError:  # pragma: no cover - client vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(self, method: str, path: str, headers: dict, body: bytes):
        if path == "/healthz":
            return 200, {"ok": True}
        if path == "/stats":
            return 200, self._stats_payload()
        handlers = {
            "/v1/multiply": self._multiply,
            "/v1/pagerank": self._pagerank,
            "/v1/reachability": self._reachability,
            "/v1/similarity": self._similarity,
        }
        handler = handlers.get(path)
        if handler is None:
            return 404, {"error": f"no such route: {path}"}
        if method != "POST":
            return 405, {"error": f"{path} requires POST"}
        tenant = headers.get("x-tenant", "default") or "default"
        try:
            return 200, await handler(json_body(body), tenant)
        except (BadRequest, ReproError) as exc:
            return 400, {"error": str(exc)}
        except Overloaded as exc:
            return 503, {"error": str(exc)}
        except TimeoutError as exc:
            return 504, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - last-resort guard
            return 500, {"error": f"internal error: {exc}"}

    # -- request handlers ----------------------------------------------
    async def _multiply(self, body: dict, tenant: str) -> dict:
        algorithm = str(require(body, "algorithm"))
        a = csr_from_wire(require(body, "a"), "a")
        b = csr_from_wire(body["b"], "b") if body.get("b") is not None else None
        fingerprint = structure_fingerprint(a, a if b is None else b)
        key = (tenant, "multiply", algorithm, fingerprint)
        outcome = await self.batcher.submit(
            key, lambda: self.runtime.multiply(algorithm, a, b, tenant=tenant)
        )
        return {
            "result": csr_to_wire(outcome.result),
            "fingerprint": outcome.fingerprint,
            "replayed": outcome.replayed,
        }

    async def _pagerank(self, body: dict, tenant: str) -> dict:
        algorithm = str(require(body, "algorithm"))
        adjacency = csr_from_wire(require(body, "adjacency"), "adjacency")
        damping = scalar(body, "damping", float, 0.85)
        tol = scalar(body, "tol", float, 1e-10)
        max_iter = scalar(body, "max_iter", int, 200)
        key = (
            tenant,
            "pagerank",
            algorithm,
            structure_fingerprint(adjacency, adjacency),
        )
        result = await self.batcher.submit(
            key,
            lambda: self.runtime.pagerank(
                algorithm,
                adjacency,
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                tenant=tenant,
            ),
        )
        return {
            "scores": result.scores.tolist(),
            "iterations": result.iterations,
            "residual": result.residual,
            "converged": result.converged,
        }

    async def _reachability(self, body: dict, tenant: str) -> dict:
        algorithm = str(require(body, "algorithm"))
        adjacency = csr_from_wire(require(body, "adjacency"), "adjacency")
        k = scalar(body, "k", int, 2)
        key = (
            tenant,
            f"reach:{k}",
            algorithm,
            structure_fingerprint(adjacency, adjacency),
        )
        result = await self.batcher.submit(
            key,
            lambda: self.runtime.reachability(algorithm, adjacency, k, tenant=tenant),
        )
        return {"result": csr_to_wire(result), "k": k}

    async def _similarity(self, body: dict, tenant: str) -> dict:
        algorithm = str(require(body, "algorithm"))
        adjacency = csr_from_wire(require(body, "adjacency"), "adjacency")
        metric = str(body.get("metric", "common"))
        key = (
            tenant,
            f"sim:{metric}",
            algorithm,
            structure_fingerprint(adjacency, adjacency),
        )
        result = await self.batcher.submit(
            key,
            lambda: self.runtime.similarity(
                algorithm, adjacency, metric, tenant=tenant
            ),
        )
        return {"result": csr_to_wire(result), "metric": metric}

    # -- stats ----------------------------------------------------------
    def _stats_payload(self) -> dict:
        runtime_stats = self.runtime.stats()
        lowers = runtime_stats.plan_cache.lowers
        return {
            "runtime": runtime_stats.as_dict(),
            "batching": self.batcher.stats.as_dict(),
            # The serving thesis in one number: requests answered per
            # symbolic lowering paid (> 1 means amortisation is working).
            "requests_per_lowering": (
                runtime_stats.requests / lowers if lowers else None
            ),
        }


# -- HTTP plumbing ------------------------------------------------------
def _parse_head(head: bytes) -> tuple[str, str, dict]:
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"bad request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    path = target.split("?", 1)[0]
    return method.upper(), path, headers


async def _respond(writer, status: int, payload: dict, *, keep_alive: bool = False):
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# -- entry points -------------------------------------------------------
async def _serve_until_signalled(runtime: Runtime, config: ServeConfig) -> None:
    server = Server(runtime, config)
    host, port = await server.start()
    # Parseable by tools/bench_serve.py even when port 0 picked a free one.
    print(f"serving on http://{host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        await server.stop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.remove_signal_handler(sig)


def run(runtime: Runtime, config: ServeConfig | None = None) -> None:
    """Blocking server loop with graceful SIGINT/SIGTERM shutdown.

    The runtime is registered with :mod:`repro.runtime.lifecycle` (for
    atexit coverage) and closed — pools drained, shared memory unlinked —
    before this returns.
    """
    lifecycle.install(runtime)
    asyncio.run(_serve_until_signalled(runtime, config or ServeConfig()))


class ServerThread:
    """Run a :class:`Server` on a background thread (tests, benches).

    Usage::

        st = ServerThread(runtime, config)
        host, port = st.start()
        ...
        st.stop()          # also closes the runtime
    """

    def __init__(self, runtime: Runtime, config: ServeConfig | None = None) -> None:
        self.runtime = runtime
        self.config = config if config is not None else ServeConfig(port=0)
        self._address: tuple[str, int] | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-thread", daemon=True
        )

    def _main(self) -> None:
        try:
            asyncio.run(self._async_main())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._started.set()

    async def _async_main(self) -> None:
        server = Server(self.runtime, self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._address = await server.start()
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("server thread did not start")
        if self._error is not None:
            raise self._error
        assert self._address is not None
        return self._address

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._error is not None:
            raise self._error
