"""repro.serve — the asyncio multiply-as-a-service front-end.

Thin HTTP layer over :class:`repro.runtime.Runtime`: requests are
fingerprinted by operand structure, micro-batched with their structural
twins, and executed on warm pooled sessions so symbolic lowering is paid
once per structure, not once per request.  See :mod:`repro.serve.server`
for routes and :mod:`repro.serve.batching` for admission control.
"""

from repro.serve.batching import AdmissionConfig, BatchStats, MicroBatcher, Overloaded
from repro.serve.protocol import BadRequest, csr_from_wire, csr_to_wire
from repro.serve.server import (
    ServeConfig,
    Server,
    ServerThread,
    run,
    stats_field_names,
)

__all__ = [
    "AdmissionConfig",
    "BadRequest",
    "BatchStats",
    "MicroBatcher",
    "Overloaded",
    "ServeConfig",
    "Server",
    "ServerThread",
    "csr_from_wire",
    "csr_to_wire",
    "run",
    "stats_field_names",
]
