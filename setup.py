"""Setuptools entry point (kept for legacy editable installs without network)."""

from setuptools import setup

setup()
